"""Iteration-cost models feeding the serving discrete-event simulation.

Simulating every layer of every decode iteration of a multi-hundred-request
drain through the full :class:`~repro.sim.topology.SystemModel` would be
prohibitively slow (hundreds of thousands of per-layer events).  Instead the
serving scheduler treats one *batched decode iteration* as a single timed
event whose duration comes from a :class:`StepTimeModel`:

:class:`CalibratedStepTime`
    Lazily measures the wrapped
    :class:`~repro.baselines.base.InferenceSystem` on a small
    ``(batch, seq_len)`` grid via its full event-level ``measure()`` loop
    and bilinearly interpolates between grid points.  This is the
    Vidur-style split between a calibrated per-iteration latency model and
    a fast request-level simulation, with the paper's own simulator as the
    calibration source.  Measured cells can be shared across experiments
    and processes through a :class:`~repro.calibration.CalibrationStore`.

:class:`AnalyticStepTime`
    A transparent affine model (fixed cost + per-context-token cost) used by
    unit tests and policy studies that need exactly predictable timings.
"""

from __future__ import annotations

import abc
import bisect

from repro.baselines.base import InferenceSystem
from repro.calibration import CalibrationStore, system_fingerprint
from repro.calibration.fingerprint import fingerprint_payload
from repro.errors import ConfigurationError, SchedulingError

#: Default calibration batch sizes (powers of two up to the paper's batch 32).
DEFAULT_BATCH_GRID = (1, 2, 4, 8, 16, 32)

#: Default calibration context lengths, spanning the Short prompt (256) to
#: well past the Long class's final context (8 542 tokens).
DEFAULT_SEQ_GRID = (256, 1024, 4096, 16384)


def parse_grid(spec: str, name: str = "grid") -> tuple[int, ...]:
    """Parse a comma-separated CLI grid spec (``"1,4,16"``) into a tuple."""
    try:
        values = tuple(int(token) for token in spec.split(",") if token.strip())
    except ValueError:
        raise ConfigurationError(f"{name}: expected comma-separated integers, got {spec!r}") from None
    if not values or any(v < 1 for v in values):
        raise ConfigurationError(f"{name}: grid values must be positive integers ({spec!r})")
    return values


class StepTimeModel(abc.ABC):
    """Cost model for one batched decode iteration and one prefill pass.

    Clamp accounting is part of the interface (not a ``CalibratedStepTime``
    private): the scheduler snapshots :meth:`clamp_counters` before a drain
    and embeds :meth:`grid_clamp_summary` in the report, so any custom
    model gets its off-grid warnings surfaced by overriding the two
    no-op defaults below -- no ``getattr`` probing involved.
    """

    @abc.abstractmethod
    def step_seconds(self, batch_size: int, seq_len: int) -> float:
        """Seconds for one decode iteration of ``batch_size`` requests whose
        (mean or padded) context length is ``seq_len``."""

    @abc.abstractmethod
    def prefill_seconds(self, batch_size: int, seq_len: int) -> float:
        """Seconds to prefill ``batch_size`` prompts of ``seq_len`` tokens."""

    def clamp_counters(self) -> dict:
        """Monotonic query/clamp counters for windowed (per-drain) accounting.

        Models without a bounded calibration domain have nothing to clamp;
        the default empty snapshot pairs with the default empty summary.
        """
        return {}

    def grid_clamp_summary(self, since: dict | None = None) -> dict:
        """Structured warning about queries outside the model's domain.

        ``since`` is an earlier :meth:`clamp_counters` snapshot windowing
        the counts to one drain.  The default reports nothing.
        """
        return {}

    def flush(self) -> None:
        """Persist any deferred calibration state (drain/sweep boundaries).

        Part of the interface so drain loops can call it unconditionally
        instead of ``getattr``-probing; models without a backing store
        have nothing to persist and inherit this no-op.
        """

    def spill_read_seconds(
        self, spilled_bytes: float, bandwidth_bytes_per_s: float
    ) -> float:
        """Seconds one decode iteration spends re-reading spilled KV.

        The offloaded-attention step-time mode: KV resident below a tiered
        node's compute tier is re-read each iteration at the holding
        tier's near-storage rate (see :mod:`repro.serving.kvtiers`).  The
        declared default is a pure bandwidth bill, ``bytes / bandwidth``;
        models that overlap the transfer with compute (the paper's
        SmartSSD pipelines attention against the flash read) override it
        -- declared on the interface, never ``getattr``-probed.
        """
        if spilled_bytes <= 0.0:
            return 0.0
        return spilled_bytes / bandwidth_bytes_per_s


class AnalyticStepTime(StepTimeModel):
    """Affine iteration cost: ``base + per_token * seq_len`` per iteration.

    The fixed ``base`` models weight streaming (independent of context), the
    per-token term models KV traffic; both match the shape the calibrated
    model exhibits and make test expectations computable by hand.
    """

    def __init__(
        self,
        base_seconds: float = 1.0,
        per_token_seconds: float = 1e-4,
        prefill_per_token_seconds: float = 1e-3,
    ) -> None:
        if base_seconds < 0 or per_token_seconds < 0 or prefill_per_token_seconds < 0:
            raise ConfigurationError("step-time coefficients must be non-negative")
        self.base_seconds = base_seconds
        self.per_token_seconds = per_token_seconds
        self.prefill_per_token_seconds = prefill_per_token_seconds

    def step_seconds(self, batch_size: int, seq_len: int) -> float:
        if batch_size < 1:
            raise SchedulingError("cannot step an empty batch")
        return self.base_seconds + self.per_token_seconds * seq_len

    def prefill_seconds(self, batch_size: int, seq_len: int) -> float:
        return self.prefill_per_token_seconds * seq_len


class CalibratedStepTime(StepTimeModel):
    """Step times interpolated from full-simulator measurements.

    Grid cells are measured on demand and cached, so a drain that only ever
    sees batches up to 16 and contexts up to 9K touches a handful of
    ``measure()`` calls (tens of milliseconds each) rather than the whole
    grid.  Queries outside the grid clamp to the nearest edge; clamping is
    tallied so reports can carry a structured warning instead of a log line.

    When a ``store`` is given, measured cells are shared through its
    process-wide memory layer and persisted to disk, keyed by a
    deterministic fingerprint of (model, hardware, grid, version): a system
    is then measured *once ever* across experiments, sweeps, and re-runs.

    ``warmup_steps`` defaults to 0: the event-level simulators are
    deterministic and reach steady state on the first decode step (warm-up
    changes measured step times only at the 1e-14 relative level), so the
    calibration pipeline skips the redundant warm-up simulation and halves
    its cost.
    """

    def __init__(
        self,
        system: InferenceSystem,
        batch_grid: tuple[int, ...] = DEFAULT_BATCH_GRID,
        seq_grid: tuple[int, ...] = DEFAULT_SEQ_GRID,
        n_steps: int = 1,
        warmup_steps: int = 0,
        store: CalibrationStore | None = None,
    ) -> None:
        if not batch_grid or not seq_grid:
            raise ConfigurationError("calibration grids must be non-empty")
        self.system = system
        self.batch_grid = tuple(sorted(set(batch_grid)))
        self.seq_grid = tuple(sorted(set(seq_grid)))
        self.n_steps = n_steps
        self.warmup_steps = warmup_steps
        self.store = store
        #: Number of full-simulator ``measure()`` runs this instance
        #: actually performed (cache hits -- in-memory or persisted -- do
        #: not count).  A warm store keeps this at zero.
        self.measurement_count = 0
        self._cache: dict[tuple[int, int], float] = {}
        self._prefill_cache: dict[tuple[int, int], float] = {}
        self._fingerprint: str | None = None
        self._hydrated = store is None
        # Structured clamp accounting (satisfies "warn without logging").
        self._step_queries = 0
        self._clamped_queries = 0
        self._max_batch_seen = 0
        self._max_seq_seen = 0
        self._min_batch_seen: int | None = None
        self._min_seq_seen: int | None = None

    # --- store plumbing ---------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Deterministic identity of this (system, grid) combination."""
        if self._fingerprint is None:
            self._fingerprint = system_fingerprint(
                self.system,
                self.batch_grid,
                self.seq_grid,
                n_steps=self.n_steps,
                warmup_steps=self.warmup_steps,
            )
        return self._fingerprint

    def prewarm(self) -> int:
        """Hydrate the in-memory cell cache from the store.

        Returns the number of cells now cached.  Performs no measurements;
        an empty or version-stale store simply yields zero cells.
        """
        if self.store is not None:
            self._cache.update(self.store.load_step_grid(self.fingerprint))
            self._prefill_cache.update(self.store.load_prefill_grid(self.fingerprint))
        self._hydrated = True
        return len(self._cache)

    def _description(self) -> dict:
        return fingerprint_payload(
            self.system,
            self.batch_grid,
            self.seq_grid,
            self.n_steps,
            self.warmup_steps,
        )

    # --- grid measurement -------------------------------------------------------

    def _measure(self, batch: int, seq_len: int) -> float:
        if not self._hydrated:
            self.prewarm()
        key = (batch, seq_len)
        if key not in self._cache:
            result = self.system.measure(
                batch, seq_len, n_steps=self.n_steps, warmup_steps=self.warmup_steps
            )
            self.measurement_count += 1
            if result.oom:
                raise SchedulingError(
                    f"{self.system.name} cannot decode batch {batch} at context "
                    f"{seq_len} ({result.note}); tighten the admission budget"
                )
            step = result.step_seconds
            if result.effective_batch < batch:
                # Placement clamped the batch (DRAM-resident KV systems halve
                # until resident state fits): serving `batch` concurrent
                # requests then means time-slicing sequential sub-batches at
                # the feasible size, not a single cheaper small-batch step.
                step *= batch / result.effective_batch
            self._cache[key] = step
            if self.store is not None:
                self.store.record(
                    self.fingerprint,
                    description=self._description(),
                    step_cells={key: step},
                    flush=False,
                )
        return self._cache[key]

    def flush(self) -> None:
        """Persist any deferred store writes (drain/sweep boundaries)."""
        if self.store is not None:
            self.store.flush_dirty()

    def missing_cells(self) -> list[tuple[int, int]]:
        """Grid cells not yet cached (hydrating from the store first).

        The parallel pre-warmer (:mod:`repro.calibration.prewarm`) fans
        exactly these cells across worker processes.
        """
        if not self._hydrated:
            self.prewarm()
        return [
            (batch, seq_len)
            for batch in self.batch_grid
            for seq_len in self.seq_grid
            if (batch, seq_len) not in self._cache
        ]

    def seed_cell(self, cell: tuple[int, int], step_seconds: float) -> None:
        """Install an externally measured cell (pre-warmer merge path).

        The value lands in the in-memory cache and -- when a store is
        attached -- is recorded with a deferred flush, so a sweep boundary
        (or the atexit hook) persists it alongside locally measured cells.
        """
        self._cache[cell] = step_seconds
        if self.store is not None:
            self.store.record(
                self.fingerprint,
                description=self._description(),
                step_cells={cell: step_seconds},
                flush=False,
            )

    @property
    def calibration_points(self) -> int:
        """Number of grid cells currently cached (measured or store-loaded)."""
        return len(self._cache)

    # --- clamp accounting -------------------------------------------------------

    def clamp_counters(self) -> dict:
        """Monotonic clamp counters, for windowed (per-drain) accounting."""
        return {
            "step_queries": self._step_queries,
            "clamped_queries": self._clamped_queries,
        }

    def grid_clamp_summary(self, since: dict | None = None) -> dict:
        """Structured note describing queries that fell outside the grid.

        Empty dict when every query was inside; otherwise enough context to
        judge whether the grid needs extending (the report embeds this
        verbatim instead of emitting a log line).  ``since`` (a snapshot
        from :meth:`clamp_counters`) windows the query counts so a drain
        sharing this model with earlier drains reports only its own
        clamping; ``max_batch_seen``/``max_seq_seen`` remain lifetime
        maxima (they exist to size the grid, not to audit one drain).
        """
        base_queries = since["step_queries"] if since else 0
        base_clamped = since["clamped_queries"] if since else 0
        clamped = self._clamped_queries - base_clamped
        if not clamped:
            return {}
        return {
            "step_queries": self._step_queries - base_queries,
            "clamped_queries": clamped,
            "batch_grid_min": self.batch_grid[0],
            "batch_grid_max": self.batch_grid[-1],
            "seq_grid_min": self.seq_grid[0],
            "seq_grid_max": self.seq_grid[-1],
            "min_batch_seen": self._min_batch_seen,
            "max_batch_seen": self._max_batch_seen,
            "min_seq_seen": self._min_seq_seen,
            "max_seq_seen": self._max_seq_seen,
        }

    # --- interpolation ----------------------------------------------------------

    @staticmethod
    def _bracket(grid: tuple[int, ...], value: int) -> tuple[int, int, float]:
        """Neighbouring grid values and the interpolation weight of the upper."""
        if value <= grid[0]:
            return grid[0], grid[0], 0.0
        if value >= grid[-1]:
            return grid[-1], grid[-1], 0.0
        hi_index = bisect.bisect_left(grid, value)
        if grid[hi_index] == value:
            # Exact grid hit: no second row/column measurement needed.
            return value, value, 0.0
        lo, hi = grid[hi_index - 1], grid[hi_index]
        return lo, hi, (value - lo) / (hi - lo)

    def step_seconds(self, batch_size: int, seq_len: int) -> float:
        if batch_size < 1:
            raise SchedulingError("cannot step an empty batch")
        if seq_len < 1:
            raise SchedulingError("context length must be positive")
        self._step_queries += 1
        if batch_size > self._max_batch_seen:
            self._max_batch_seen = batch_size
        if seq_len > self._max_seq_seen:
            self._max_seq_seen = seq_len
        if self._min_batch_seen is None or batch_size < self._min_batch_seen:
            self._min_batch_seen = batch_size
        if self._min_seq_seen is None or seq_len < self._min_seq_seen:
            self._min_seq_seen = seq_len
        if (
            batch_size > self.batch_grid[-1]
            or seq_len > self.seq_grid[-1]
            or batch_size < self.batch_grid[0]
            or seq_len < self.seq_grid[0]
        ):
            # Both directions clamp: above-max queries are billed at the
            # edge cell (underestimate), below-min queries at the smallest
            # cell (overestimate for partial tail batches).
            self._clamped_queries += 1
        b_lo, b_hi, wb = self._bracket(self.batch_grid, batch_size)
        s_lo, s_hi, ws = self._bracket(self.seq_grid, seq_len)
        t_ll = self._measure(b_lo, s_lo)
        t_lh = self._measure(b_lo, s_hi) if s_hi != s_lo else t_ll
        if b_hi == b_lo:
            return t_ll + ws * (t_lh - t_ll)
        t_hl = self._measure(b_hi, s_lo)
        t_hh = self._measure(b_hi, s_hi) if s_hi != s_lo else t_hl
        low = t_ll + ws * (t_lh - t_ll)
        high = t_hl + ws * (t_hh - t_hl)
        return low + wb * (high - low)

    def prefill_seconds(self, batch_size: int, seq_len: int) -> float:
        # The systems' prefill model is analytic (Section 6.4) and cheap, so
        # it needs no grid -- but it can read state that ``measure()``
        # mutates (e.g. HILOS's selected alpha), so results are cached by
        # query (and persisted next to the step grid) to keep repeated
        # drains byte-for-byte deterministic.
        if not self._hydrated:
            self.prewarm()
        key = (max(1, batch_size), max(1, seq_len))
        if key not in self._prefill_cache:
            self._prefill_cache[key] = self.system.prefill_seconds(*key)
            if self.store is not None:
                self.store.record(
                    self.fingerprint,
                    description=self._description(),
                    prefill_cells={key: self._prefill_cache[key]},
                    flush=False,
                )
        return self._prefill_cache[key]
