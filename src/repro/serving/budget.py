"""KV-capacity budgets for admission control.

Reserve-mode admission takes a request only when the KV cache it will have
grown by its final token still fits the serving system's cache home;
optimistic admission charges just the current footprint and relies on
preemption (see :mod:`repro.serving.scheduler`) to resolve overflow.  The
budget is derived from the same placement rules
:mod:`repro.analysis.capacity` applies to single measurements:

* DRAM-resident caches (``FLEX(DRAM)``-style) get the usable host DRAM left
  after the OS reserve and DRAM-resident weights, deflated by the pinned
  staging/double-buffering overhead factor;
* storage- and NSP-resident caches get the aggregate flash capacity of the
  drive array, minus weights for >100B models whose weights live on flash.

The :class:`BudgetTracker` ledger here is *flat*: one capacity number, no
distinction between where within the cache home a request's bytes live.
Nodes configured with a KV tier stack swap in
:class:`~repro.serving.kvtiers.TieredBudgetTracker`, which keeps this
ledger's arithmetic byte-for-byte (the flat budget becomes the stack
total) while additionally tracking per-tier residency, demotion/promotion
traffic, and spilled-decode read time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.capacity import (
    DRAM_RESERVE_FRACTION,
    KV_OVERHEAD_FACTOR,
    KVPlacement,
    WeightPlacement,
)
from repro.analysis.sanitizer import SanitizerError
from repro.baselines.base import InferenceSystem
from repro.errors import SchedulingError
from repro.models.config import ModelConfig
from repro.serving.request import ServingRequest

#: Fraction of the raw cache home kept free for metadata, page-alignment
#: padding, and (on flash) over-provisioning headroom.
CAPACITY_HEADROOM_FRACTION = 0.10


@dataclass(frozen=True)
class CapacityBudget:
    """Byte budget the sum of admitted requests' final KV caches must fit."""

    kv_capacity_bytes: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.kv_capacity_bytes <= 0:
            raise SchedulingError(
                f"empty KV budget ({self.description or 'unspecified home'}); "
                "the cache home cannot hold any request"
            )


def capacity_budget_for(system: InferenceSystem) -> CapacityBudget:
    """Derive the admission budget from a system's placement and hardware."""
    hardware = system.hardware_config()
    model = system.model
    if system.kv_placement is KVPlacement.DRAM:
        usable = hardware.host_dram_bytes * (1.0 - DRAM_RESERVE_FRACTION)
        if system.weight_placement() is WeightPlacement.DRAM:
            usable -= model.weight_bytes() * 1.1  # same pinning slack as planning
        usable /= KV_OVERHEAD_FACTOR
        home = "host DRAM"
    else:
        usable = (
            hardware.n_conventional_ssds
            * hardware.conventional_ssd_spec.capacity_bytes
            + hardware.n_smartssds * hardware.smartssd_flash_spec.capacity_bytes
        )
        if system.weight_placement() is WeightPlacement.STORAGE:
            usable -= model.weight_bytes()
        home = "flash array"
    usable *= 1.0 - CAPACITY_HEADROOM_FRACTION
    return CapacityBudget(
        kv_capacity_bytes=usable,
        description=f"{system.name} KV cache in {home}",
    )


@dataclass
class BudgetTracker:
    """Running reservation ledger against a :class:`CapacityBudget`.

    Two admission accountings share the ledger:

    * *reserve* -- requests hold their **final**-context KV bytes from
      admission to completion (:meth:`reserve`), so in-flight growth can
      never burst past the budget;
    * *optimistic* -- requests hold only their **current**-context bytes
      (:meth:`occupy`), re-marked after every generated token
      (:meth:`update`); overflow is possible by construction and the
      scheduler resolves it by preempting the youngest request before the
      step that would burst (:meth:`growth_bytes` prices that check).

    ``peak_reserved_bytes`` lets tests assert the budget invariant held
    for a whole drain under either accounting.

    With ``sanitize`` on (sanitized drains set it from their simulator)
    every ledger movement is conservation-checked: occupied bytes may
    never go negative, and :meth:`assert_drained` verifies the ledger is
    empty -- every reservation released, residue within float tolerance --
    at drain end.  Sanitized trackers also stamp each admitted request's
    :attr:`~repro.serving.request.ServingRequest.kv_holder` with ``owner``
    (the node name, for per-node trackers) so a migrated request admitted
    elsewhere before the dead node released its bytes is caught as a
    ``migration-kv-release`` violation instead of silently double-counting
    KV across the fleet.
    """

    budget: CapacityBudget
    model: ModelConfig
    reserved_bytes: float = 0.0
    peak_reserved_bytes: float = 0.0
    _held: dict[int, float] = field(default_factory=dict)
    sanitize: bool = False
    #: Display name of the ledger's owner (node name in cluster drains);
    #: used only for kv-holder provenance and error messages.
    owner: str = ""

    def _conservation_tolerance(self) -> float:
        """Float-accumulation slack: ledger adds/removes large byte figures."""
        return 1e-9 * self.budget.kv_capacity_bytes + 1e-6

    def fits(self, request: ServingRequest, extra_bytes: float = 0.0) -> bool:
        """Whether a final-context reservation stays within budget.

        ``extra_bytes`` accounts for co-admitted requests whose reservations
        are decided but not yet recorded (the policies' admission loops).
        """
        return self.fits_bytes(request.kv_reservation_bytes(self.model), extra_bytes)

    def fits_bytes(self, need: float, extra_bytes: float = 0.0) -> bool:
        """Whether holding ``need`` more bytes stays within budget."""
        return (
            self.reserved_bytes + extra_bytes + need
            <= self.budget.kv_capacity_bytes
        )

    def _record(self, request: ServingRequest, need: float) -> None:
        if self.reserved_bytes + need > self.budget.kv_capacity_bytes:
            raise SchedulingError(
                f"request {request.request_id} overcommits the KV budget "
                f"({self.budget.description})"
            )
        if request.request_id in self._held:
            raise SchedulingError(f"request {request.request_id} reserved twice")
        if self.sanitize:
            if request.kv_holder is not None:
                raise SanitizerError(
                    f"request {request.request_id} admitted on "
                    f"{self.owner or self.budget.description!r} while its KV "
                    f"bytes are still held on {request.kv_holder!r}; a "
                    "migration must release the dead node's ledger before "
                    "re-admission",
                    invariant="migration-kv-release",
                    request_id=request.request_id,
                )
            request.kv_holder = self.owner or self.budget.description
        self._held[request.request_id] = need
        self.reserved_bytes += need
        self.peak_reserved_bytes = max(self.peak_reserved_bytes, self.reserved_bytes)

    def reserve(self, request: ServingRequest) -> None:
        """Record a final-context admission; refuses to overcommit.

        A folded representative (``weight > 1``, see
        :mod:`repro.serving.request`) holds its whole membership's bytes
        under one ledger entry -- ``weight`` identical final-context
        footprints -- so the budget sees exactly what admitting every
        member individually would have recorded.
        """
        self._record(
            request, request.weight * request.kv_reservation_bytes(self.model)
        )

    def occupy(self, request: ServingRequest) -> None:
        """Record an optimistic admission at the post-prefill footprint.

        The held figure covers the context the prefill pass is about to
        build (prompt plus any previously generated tokens for a preempted
        readmission) *and* the token it emits on completion, so promotion
        out of prefill never moves the ledger past what admission checked;
        decode growth is re-marked by :meth:`update`.  Folded
        representatives hold ``weight`` identical member footprints.
        """
        self._record(
            request, request.weight * request.kv_admission_bytes(self.model)
        )

    def update(self, request: ServingRequest) -> None:
        """Re-mark an occupied request at its (grown) current context."""
        try:
            held = self._held[request.request_id]
        except KeyError:
            raise SchedulingError(
                f"request {request.request_id} updated without a reservation"
            ) from None
        now = request.weight * request.kv_current_bytes(self.model)
        self._held[request.request_id] = now
        self.reserved_bytes += now - held
        self.peak_reserved_bytes = max(self.peak_reserved_bytes, self.reserved_bytes)
        if self.sanitize:
            self._check_occupancy(request.request_id)

    def release_share(self, request: ServingRequest, members: int = 1) -> None:
        """Release ``members`` members' share of a folded reservation.

        Called after a representative splits off preempted members (see
        :meth:`~repro.serving.request.ServingRequest.split_youngest`, which
        has already decremented ``request.weight``): the representative's
        ledger entry shrinks by the departed members' per-member share --
        exact, because the entry is an integer byte figure times the old
        member count -- while the remaining members stay held under the
        representative's id.
        """
        try:
            held = self._held[request.request_id]
        except KeyError:
            raise SchedulingError(
                f"request {request.request_id} split without a reservation"
            ) from None
        share = members * (held / (request.weight + members))
        self._held[request.request_id] = held - share
        self.reserved_bytes -= share
        if self.sanitize:
            self._check_occupancy(request.request_id)

    def growth_bytes(self, request: ServingRequest) -> float:
        """Bytes the next generated token appends to ``request``'s cache."""
        return float(
            self.model.kv_cache_bytes(1, request.context_tokens + 1)
            - self.model.kv_cache_bytes(1, request.context_tokens)
        )

    def release(self, request: ServingRequest) -> None:
        """Return a completed request's reservation to the pool."""
        try:
            need = self._held.pop(request.request_id)
        except KeyError:
            raise SchedulingError(
                f"request {request.request_id} released without a reservation"
            ) from None
        self.reserved_bytes -= need
        if self.sanitize:
            request.kv_holder = None
            self._check_occupancy(request.request_id)

    # --- sanitizer invariants ---------------------------------------------------

    def _check_occupancy(self, request_id: int) -> None:
        """Occupied bytes may never go meaningfully negative."""
        if self.reserved_bytes < -self._conservation_tolerance():
            raise SanitizerError(
                f"KV ledger went negative ({self.reserved_bytes:.3f} bytes, "
                f"budget {self.budget.description!r})",
                invariant="budget-conservation",
                request_id=request_id,
            )

    def assert_drained(self, context: str = "") -> None:
        """Conservation at drain end: ledger empty, residue within tolerance."""
        where = f" on {context}" if context else ""
        if self._held:
            ids = sorted(self._held)
            shown = ", ".join(str(i) for i in ids[:5])
            if len(ids) > 5:
                shown += f", ... ({len(ids) - 5} more)"
            raise SanitizerError(
                f"{len(ids)} KV reservation(s) never released{where}: "
                f"request(s) {shown}",
                invariant="budget-conservation",
                request_id=ids[0],
            )
        if abs(self.reserved_bytes) > self._conservation_tolerance():
            raise SanitizerError(
                f"KV ledger residue of {self.reserved_bytes:.3f} bytes after "
                f"all reservations were released{where}",
                invariant="budget-conservation",
            )
