"""Per-node serving engine: one host's admission/preemption state machine.

:class:`Node` bundles what one simulated host brings to a fleet -- an
:class:`~repro.baselines.base.InferenceSystem`, a calibrated
:class:`~repro.serving.steptime.StepTimeModel`, a KV
:class:`~repro.serving.budget.CapacityBudget`, and an optional prefill
chunk size.  :class:`NodeEngine` is the node's *runtime*: the
admission/preemption state machine that used to live inside
``OfflineServingScheduler._drain_process``, now instantiated once per node
per drain on a **shared** discrete-event simulator so a
:class:`~repro.serving.cluster.ClusterScheduler` can drain one queue
across many hosts.

Request lifecycle (unchanged from the single-node scheduler)::

    pending --arrival--> waiting --admit--> prefilling --chunks done-->
    running --last token--> finished
                  ^                                |
                  +------- preempt (optimistic) ---+

The engine receives work through two channels:

* :meth:`NodeEngine.preload` installs a whole arrival-stamped queue up
  front (the single-node drain: the engine itself sleeps until the next
  arrival, exactly the legacy scheduler loop);
* :meth:`NodeEngine.enqueue` delivers one request at its arrival time (the
  cluster dispatcher routes each arrival as it happens); an idle engine
  parks on a wake event that ``enqueue`` (or
  :meth:`NodeEngine.finish_arrivals`) triggers.

The engine also exposes the live load views routers place against:
:attr:`outstanding_tokens` (JSQ) and :attr:`kv_headroom_bytes` /
:meth:`kv_fits` (KV-aware best fit).

Under fault injection (:mod:`repro.serving.faults`) the engine carries a
node lifecycle::

    UP --inject_failure--> DRAINING --next round--> DOWN
                                                      |  (recovery_seconds)
    UP <------------------- RECOVERING <--------------+

``inject_failure`` marks the node for death; the death lands at the next
scheduling-round boundary (the in-flight iteration finishes first -- the
spot "preemption notice" model), where every admitted request is evicted
recompute-on-migrate, the KV ledger is fully released, and the node's
whole queue flows back to the cluster's :class:`~repro.serving.faults.FaultDriver`
for re-routing.  A DOWN node accrues :attr:`downtime_seconds` until it
recovers (or until the drain ends); ``apply_slowdown`` multiplies step
times for a window without killing the node.  Fault-free drains never
touch any of this -- every hook is a single attribute test on the hot
path, and the no-fault schedule is byte-identical to the pre-fault code.

Autoscaled drains (:mod:`repro.serving.autoscale`) reuse the same
lifecycle for *elasticity*: :meth:`NodeEngine.start_offline` begins a
spare node DOWN (downtime from t=0, so the uptime-only cost path bills
only its provisioned window), :meth:`NodeEngine.provision` re-runs the
RECOVERING path with a provisioning delay, and
:meth:`NodeEngine.drain_gracefully` scales a node down without killing
in-flight work -- routing stops, admitted and queued requests complete,
then the node goes DOWN as a provisionable spare.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.baselines.base import InferenceSystem
from repro.errors import ConfigurationError, SchedulingError
from repro.serving.budget import BudgetTracker, CapacityBudget, capacity_budget_for
from repro.serving.kvtiers import TieredBudgetTracker, TierPolicy, TierStack
from repro.serving.policies import SchedulingPolicy
from repro.serving.request import (
    ServingRequest,
    fold_identical_runs,
    total_weight,
)
from repro.serving.steptime import CalibratedStepTime, StepTimeModel
from repro.sim.engine import Simulator


class Node:
    """One simulated host of a serving fleet.

    Holds only per-host *configuration*; all per-drain state (queues,
    budget ledger) lives in the :class:`NodeEngine` a drain builds, so one
    ``Node`` can back any number of sequential drains.  The default step
    time is a :class:`~repro.serving.steptime.CalibratedStepTime` over the
    node's system -- pass one wired to a
    :class:`~repro.calibration.CalibrationStore` (or share one instance
    across the symmetric nodes of a homogeneous fleet) so fleets
    warm-start from persisted grids instead of measuring per node.
    """

    def __init__(
        self,
        system: InferenceSystem,
        step_time: StepTimeModel | None = None,
        budget: CapacityBudget | None = None,
        prefill_chunk_tokens: int | None = None,
        name: str | None = None,
        kv_tiers: TierStack | None = None,
        kv_policy: TierPolicy | None = None,
    ) -> None:
        if prefill_chunk_tokens is not None and prefill_chunk_tokens < 1:
            raise ConfigurationError("prefill chunk size must be >= 1 token")
        self.system = system
        self.step_time = step_time or CalibratedStepTime(system)
        self.name = name or system.name
        if kv_tiers is not None:
            if budget is not None:
                raise ConfigurationError(
                    f"node {self.name!r} got both a flat budget and a KV tier "
                    "stack; a tiered node's budget is the stack's total "
                    "capacity"
                )
            self.budget = kv_tiers.capacity_budget(self.name)
        else:
            if kv_policy is not None:
                raise ConfigurationError(
                    f"node {self.name!r} got a KV policy without a tier "
                    "stack; pass kv_tiers alongside kv_policy"
                )
            self.budget = budget or capacity_budget_for(system)
        self.kv_tiers = kv_tiers
        self.kv_policy = kv_policy
        self.prefill_chunk_tokens = prefill_chunk_tokens

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name!r}, system={self.system.name!r})"


class NodeEngine:
    """Drives one node's drain loop as a process on a shared simulator.

    The loop is the legacy ``OfflineServingScheduler`` state machine verbatim
    -- surfacing arrivals, policy admission, (chunked) prefill, decode
    iterations, optimistic-overflow preemption -- extended with an idle
    park: when the engine has no work and no known future arrival, it waits
    on a wake event instead of exiting, because a cluster dispatcher may
    still route more requests its way.  :meth:`finish_arrivals` marks the
    stream exhausted so a drained engine can terminate.
    """

    def __init__(self, node: Node, policy: SchedulingPolicy, sim: Simulator) -> None:
        self.node = node
        self.policy = policy
        self.sim = sim
        if node.kv_tiers is not None:
            self.tracker: BudgetTracker = TieredBudgetTracker.for_stack(
                stack=node.kv_tiers,
                model=node.system.model,
                policy=node.kv_policy,
                sanitize=sim.sanitizer is not None,
                owner=node.name,
            )
        else:
            self.tracker = BudgetTracker(
                budget=node.budget,
                model=node.system.model,
                sanitize=sim.sanitizer is not None,
                owner=node.name,
            )
        #: Whether this node tracks a KV tier stack.  Declared once so the
        #: hot-loop hooks are single attribute tests (the ``_slow_factor``
        #: pattern) and flat drains stay byte-identical.
        self.tiered = node.kv_tiers is not None
        #: Requests routed here whose arrival time has not been reached
        #: (preloaded single-node queues only; dispatched requests arrive
        #: due and go straight through to ``waiting`` at the next loop top).
        self.pending: deque[ServingRequest] = deque()
        self.waiting: deque[ServingRequest] = deque()
        self.prefilling: list[ServingRequest] = []
        self.running: list[ServingRequest] = []
        #: Every request ever routed to this node, in routing order (the
        #: per-node report is built from this).
        self.assigned: list[ServingRequest] = []
        self._batch_slots = 0
        self._wake = None
        self._arrivals_done = False
        #: Representative fleet drains set this so the engine folds
        #: identical waiting requests into weighted representatives at each
        #: scheduling point.  Folding at the loop top (not at delivery)
        #: matters: a parked engine is woken *inside* the dispatcher's
        #: first same-time delivery and admits it before the rest of the
        #: burst lands in ``pending``, so only requests that are actually
        #: waiting together may fold -- which is exactly what the loop-top
        #: queue state captures.
        self.fold_requests = False
        #: Fault driver of a fault-mode cluster drain (None otherwise).
        self.driver = None
        # --- fault-injection lifecycle (inert on fault-free drains) ---
        self._state = "up"  # up | draining | down | done
        self._death_pending = False
        self._pending_recovery_seconds: float | None = None
        self._will_recover = False
        self._slow_factor = 1.0
        self._slow_token = 0
        self._down_since = 0.0
        #: Seconds this node spent DOWN during the drain.
        self.downtime_seconds = 0.0
        #: Requests this node's deaths pushed back to the dispatcher.
        self.migrations = 0
        #: Context tokens this node's deaths dropped (recomputed elsewhere).
        self.migrated_recompute_tokens = 0
        # --- overload / autoscale lifecycle (inert otherwise) ---
        #: True while the autoscaler drains this node gracefully: no new
        #: routing, in-flight work completes, then the node goes DOWN.
        self._scale_down = False
        #: Whether an offline (scaled-down or never-started) node may be
        #: provisioned back up by the autoscaler.
        self.provisionable = False
        #: Requests admission control shed and charged to this node.
        self.shed_requests = 0
        #: Backoff attempts carried by requests shed against this node.
        self.shed_retry_attempts = 0

    # --- lifecycle --------------------------------------------------------------

    @property
    def state(self) -> str:
        """Lifecycle state: ``up``/``draining``/``down``/``recovering``/``done``.

        ``recovering`` is a reporting view of ``down`` with a provisioning
        timer armed; the loop itself only distinguishes down from up.
        """
        if self._state == "down" and self._will_recover:
            return "recovering"
        return self._state

    @property
    def routable(self) -> bool:
        """Whether the dispatcher may still route new work here."""
        return self._state == "up" and not self._death_pending and not self._scale_down

    @property
    def recovery_pending(self) -> bool:
        """Whether a dead (or dying) node has a provisioning timer armed."""
        return self._will_recover

    @property
    def scale_draining(self) -> bool:
        """Whether the autoscaler is gracefully draining this node."""
        return self._scale_down and self._state == "up" and not self._death_pending

    @property
    def queued_requests(self) -> int:
        """Requests routed here but not yet admitted (the overload signal).

        Counts folded members, not representatives, so the signal is the
        same backlog an unfolded drain would report.
        """
        return total_weight(self.pending) + total_weight(self.waiting)

    def inject_failure(self, recovery_seconds: float | None = None) -> bool:
        """Mark the node for death at its next scheduling-round boundary.

        ``recovery_seconds`` arms a re-provisioning timer (spot
        preemption); ``None`` is a permanent crash.  Returns ``False``
        without effect when the node is already dead or dying -- repeated
        spot draws against a down node are no-ops.  (A gracefully
        scale-draining node is still UP hardware: faults can kill it.)
        """
        if self._state != "up" or self._death_pending:
            return False
        self._death_pending = True
        self._pending_recovery_seconds = recovery_seconds
        self._will_recover = recovery_seconds is not None
        self._state = "draining"
        self._wake_if_parked()
        return True

    def apply_slowdown(self, factor: float, duration_seconds: float) -> None:
        """Multiply step times by ``factor`` for ``duration_seconds``.

        Windows do not compose: a later slowdown replaces the current one,
        and each window clears only itself (token-guarded), so an expired
        early window can never cancel a longer later one.
        """
        self._slow_factor = factor
        self._slow_token += 1
        token = self._slow_token
        self.sim.schedule(duration_seconds, lambda: self._clear_slowdown(token))

    def _clear_slowdown(self, token: int) -> None:
        if token == self._slow_token:
            self._slow_factor = 1.0

    def _wake_if_parked(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            wake, self._wake = self._wake, None
            wake.succeed()

    def _apply_death(self) -> None:
        """Take the node DOWN: evict, release all KV, return the queue.

        Eviction order is admitted seniority first (running, then
        prefilling, then queued), which is also the order the dispatcher
        re-routes in -- migrated decodes resume before never-started work.
        Every evicted request's ledger entry is released *here*, before any
        re-admission elsewhere (the sanitizer's ``migration-kv-release``
        invariant), and the requests leave :attr:`assigned` so each request
        is accounted by exactly one node's breakdown.  On tiered nodes the
        release drains every tier the request's KV touched (the
        ``tier-conservation`` invariant) -- migration never strands spilled
        bytes.
        """
        self._death_pending = False
        self._scale_down = False
        self._state = "down"
        self._down_since = self.sim.now
        recovery = self._pending_recovery_seconds
        self._pending_recovery_seconds = None
        migrated: list[ServingRequest] = []
        dropped_total = 0
        for request in self.running:
            self.tracker.release(request)
            request.record_migration(request.context_tokens)
            dropped_total += request.context_tokens
            migrated.append(request)
        for request in self.prefilling:
            self.tracker.release(request)
            dropped = request.prefill_tokens_done
            request.record_migration(dropped)
            dropped_total += dropped
            migrated.append(request)
        for request in list(self.waiting) + list(self.pending):
            request.record_migration(0)
            migrated.append(request)
        self.running.clear()
        self.prefilling.clear()
        self.waiting.clear()
        self.pending.clear()
        self._batch_slots = 0
        if migrated:
            gone = {request.request_id for request in migrated}
            self.assigned = [r for r in self.assigned if r.request_id not in gone]
            self.migrations += len(migrated)
            self.migrated_recompute_tokens += dropped_total
        if recovery is not None:
            self.sim.schedule(recovery, self._recover)
        if self.driver is not None:
            self.driver.note_death(self, migrated)

    def _recover(self) -> None:
        """Provisioning finished: the node is UP again (spot recovery)."""
        if self._state != "down":
            return  # the drain already finalized this engine
        self.downtime_seconds += self.sim.now - self._down_since
        self._state = "up"
        self._will_recover = False
        if self.driver is not None:
            self.driver.note_recovery(self)

    def _finalize(self) -> None:
        """Close the lifecycle at loop exit (bill any open downtime)."""
        if self._state == "down":
            self.downtime_seconds += self.sim.now - self._down_since
        self._state = "done"

    # --- elastic lifecycle (autoscaled drains only) -----------------------------

    def start_offline(self) -> None:
        """Begin the drain DOWN as an unprovisioned spare (autoscale pool).

        The node accrues downtime from t=0 until the autoscaler
        provisions it, so the uptime-only cost path bills exactly the
        provisioned window -- a spare never scaled up costs nothing.
        Call before the drain starts running.
        """
        self._state = "down"
        self._down_since = 0.0
        self.provisionable = True

    def provision(self, provision_seconds: float) -> bool:
        """Bring capacity (back) online: the autoscaler's scale-up hook.

        A gracefully-draining node is reactivated instantly (warm
        cancel: it never went down).  An offline provisionable spare
        arms the fault layer's RECOVERING timer -- the node is UP after
        ``provision_seconds``, via the same :meth:`_recover` path a spot
        preemption uses.  Returns ``False`` when the node is neither.
        """
        if self._scale_down:
            self._scale_down = False
            return True
        if self._state == "down" and self.provisionable and not self._will_recover:
            self.provisionable = False
            self._will_recover = True
            self.sim.schedule(provision_seconds, self._recover)
            return True
        return False

    def drain_gracefully(self) -> bool:
        """Scale this node down without killing in-flight work.

        The node stops being routable immediately; its admitted and
        queued requests run to completion, after which the run loop
        takes it DOWN (accruing unbilled downtime) and marks it
        provisionable for a later scale-up.
        """
        if self._state != "up" or self._death_pending:
            return False
        self._scale_down = True
        self._wake_if_parked()
        return True

    def _complete_scale_down(self) -> None:
        """The graceful drain emptied: go DOWN as a provisionable spare."""
        self._scale_down = False
        self._state = "down"
        self._down_since = self.sim.now
        self.provisionable = True

    # --- router-facing load views ----------------------------------------------

    @property
    def outstanding_tokens(self) -> int:
        """Tokens of work still owed to every request assigned here.

        Counts prefill tokens not yet computed plus output tokens not yet
        generated, over queued and active requests alike -- the join-the-
        shortest-queue load signal.
        """
        live = list(self.pending) + list(self.waiting) + self.prefilling + self.running
        return sum(
            r.weight
            * (r.prefill_remaining_tokens + (r.output_tokens - r.tokens_generated))
            for r in live
        )

    @property
    def kv_headroom_bytes(self) -> float:
        """KV bytes still unclaimed once everything routed here has grown.

        Every assigned-and-unfinished request -- queued, prefilling, or
        running -- is priced at its **final**-context reservation, not the
        admission ledger: under optimistic admission the ledger holds only
        current footprints, which would overstate headroom and steer
        KV-aware routing onto nodes guaranteed to preempt once decode
        growth lands.  (Under reserve accounting this sum equals the
        ledger plus queued commitments, so the two modes share one
        conservative routing signal.)
        """
        model = self.node.system.model
        committed = sum(
            r.weight * r.kv_reservation_bytes(model)
            for r in (
                list(self.pending)
                + list(self.waiting)
                + self.prefilling
                + self.running
            )
        )
        return self.node.budget.kv_capacity_bytes - committed

    def kv_fits(self, request: ServingRequest) -> bool:
        """Whether ``request``'s final-context KV fits the current headroom."""
        return (
            request.kv_reservation_bytes(self.node.system.model)
            <= self.kv_headroom_bytes
        )

    @property
    def top_tier_headroom_bytes(self) -> float:
        """Compute-tier headroom -- the tier-aware best-fit ranking signal.

        Flat nodes have a single implicit tier, so this equals
        :attr:`kv_headroom_bytes` and tier-aware routing ranks exactly as
        before.  Tiered nodes report the *top* tier's capacity minus its
        live occupancy minus the hot share of queued commitments -- the
        bytes that will actually contend for the compute tier, so best-fit
        packs hot sets instead of total stack bytes.
        """
        if not self.tiered:
            return self.kv_headroom_bytes
        return self.tracker.top_headroom_for_routing(
            list(self.pending) + list(self.waiting)
        )

    # --- tier reporting views ----------------------------------------------------

    def tier_reports(self) -> tuple:
        """Per-tier occupancy/movement shares (empty for flat nodes)."""
        if not self.tiered:
            return ()
        return self.tracker.tier_reports()

    @property
    def spilled_decode_seconds(self) -> float:
        """Extra decode seconds spilled-attention reads cost this node."""
        if not self.tiered:
            return 0.0
        return self.tracker.spilled_decode_seconds

    # --- work delivery ---------------------------------------------------------

    def preload(self, requests: Iterable[ServingRequest]) -> None:
        """Install a whole arrival-ordered queue (single-node drains)."""
        requests = list(requests)
        self.pending.extend(requests)
        self.assigned.extend(requests)

    def enqueue(self, request: ServingRequest) -> None:
        """Deliver one routed request (cluster dispatch, at arrival time)."""
        if self._state != "up":
            raise SchedulingError(
                f"request {request.request_id} routed to node "
                f"{self.node.name!r} in state {self.state!r}; the dispatcher "
                "must only deliver to routable nodes"
            )
        self.assigned.append(request)
        self.pending.append(request)
        self._wake_if_parked()

    def finish_arrivals(self) -> None:
        """Mark the arrival stream exhausted so an idle engine can exit."""
        self._arrivals_done = True
        self._wake_if_parked()

    # --- the drain loop --------------------------------------------------------

    def run(self):
        """The node's drain process (a generator for ``sim.process``)."""
        sim = self.sim
        optimistic = self.policy.admission == "optimistic"
        while True:
            if self._death_pending:
                self._apply_death()
            if self._state == "down":
                # Dead node: nothing to do until provisioning finishes (the
                # wake is the next enqueue after recovery) or the fleet
                # declares the drain over.
                if self._arrivals_done:
                    self._finalize()
                    return
                self._wake = sim.event(f"{self.node.name}.wake")
                yield self._wake
                continue
            arrived = False
            while self.pending and self.pending[0].arrival_time <= sim.now:
                self.waiting.append(self.pending.popleft())
                arrived = True
            if arrived and self.fold_requests:
                # Fold adjacent identical waiting requests (same class, same
                # arrival time, no lifecycle state) into weighted
                # representatives; weighted admission arithmetic is bit-equal
                # to admitting the members one at a time, and partial
                # admission / preemption split representatives back apart.
                refolded = fold_identical_runs(list(self.waiting))
                self.waiting.clear()
                self.waiting.extend(refolded)
            admitted = self.policy.admit(
                self.waiting, self.running + self.prefilling, self.tracker
            )
            for request in admitted:
                if optimistic:
                    self.tracker.occupy(request)
                else:
                    self.tracker.reserve(request)
                if request.admitted_time is None:
                    request.admitted_time = sim.now
                request.last_admitted_time = sim.now
            self.prefilling.extend(admitted)
            if admitted and self.driver is not None:
                # Queue depth just dropped: wake any delivery parked on a
                # full waiting queue (overload park/backpressure).
                self.driver.note_admission()
            if self.policy.padded and admitted:
                # Slot count of the formed batch (in members, so folded
                # representatives bill all their slots), captured before
                # any prefill-completers retire: their slots idle (and are
                # billed) until the whole batch drains.
                self._batch_slots = total_weight(self.running) + total_weight(
                    self.prefilling
                )
            progressed = bool(admitted)
            if self.tiered:
                # Admission placement may have demoted resident KV to make
                # top-tier room; bill that movement before prefill starts.
                # Zero movement yields nothing, so a single-tier stack adds
                # no events and stays byte-identical to the flat path.
                yield from self._bill_kv_movement()
            if self.prefilling:
                yield sim.timeout(self._prefill_chunk_seconds())
                self._advance_prefill(optimistic)
                self._retire_finished()
                progressed = True
            if self.running:
                if optimistic:
                    self._resolve_overflow()
                if self.running:
                    if self.tiered:
                        # Pull spilled KV back into top-tier headroom (the
                        # policy may decline) and bill the promotions before
                        # the iteration they accelerate.
                        self.tracker.promote_for_decode(self.running)
                        yield from self._bill_kv_movement()
                    yield sim.timeout(self._iteration_seconds())
                    for request in self.running:
                        request.tokens_generated += 1
                        if optimistic:
                            self.tracker.update(request)
                    self._retire_finished()
                progressed = True
            if progressed:
                continue
            # Nothing active and nothing admitted: either the engine is
            # genuinely idle until the next arrival, or admission is stuck.
            if self.waiting:
                raise SchedulingError(
                    f"policy {self.policy.name!r} admitted nothing with "
                    f"{len(self.waiting)} requests waiting on node "
                    f"{self.node.name!r} (starvation)"
                )
            if self.pending:
                yield sim.timeout(self.pending[0].arrival_time - sim.now)
                continue
            if self._scale_down:
                # The graceful drain just emptied: nothing admitted, queued,
                # or pending -- go DOWN as a spare instead of exiting.
                self._complete_scale_down()
                continue
            if self._arrivals_done:
                self._finalize()
                return
            # Idle with the arrival stream still open: park until the
            # dispatcher routes us work (or declares the stream done).
            self._wake = sim.event(f"{self.node.name}.wake")
            yield self._wake

    # --- chunked prefill -------------------------------------------------------

    def _chunk_tokens(self, request: ServingRequest) -> int:
        """Prefill tokens ``request`` processes in the current round."""
        remaining = request.prefill_remaining_tokens
        if self.node.prefill_chunk_tokens is None:
            return remaining
        return min(self.node.prefill_chunk_tokens, remaining)

    def _prefill_chunk_seconds(self) -> float:
        longest = max(self._chunk_tokens(r) for r in self.prefilling)
        # The slowdown multiplier is 1.0 outside a slow-fault window, and
        # x * 1.0 is bitwise x, so the fault-free schedule is unchanged.
        return (
            self.node.step_time.prefill_seconds(
                total_weight(self.prefilling), longest
            )
            * self._slow_factor
        )

    def _advance_prefill(self, optimistic: bool) -> None:
        """Credit one chunk to every prefilling request; promote completers.

        Completing a prefill emits the request's next output token (the
        forward pass over the context produces the following token's
        logits): the first token for a fresh admission, the resumption
        token for a preempted readmission.  Under optimistic accounting
        the emitted token is re-marked immediately, so the overflow check
        before the next decode iteration sees the true ledger, not one
        stale by a token per promotion.
        """
        for request in list(self.prefilling):
            request.prefill_tokens_done += self._chunk_tokens(request)
            if request.prefill_remaining_tokens == 0:
                if request.first_token_time is None:
                    request.first_token_time = self.sim.now
                request.tokens_generated += 1
                if optimistic:
                    self.tracker.update(request)
                self.prefilling.remove(request)
                self.running.append(request)

    # --- preemption ------------------------------------------------------------

    def _resolve_overflow(self) -> None:
        """Preempt until the next decode iteration's KV growth fits.

        The next iteration appends one token per running request; while
        that projected growth overflows the budget, the youngest admitted
        request (latest *re*admission, ties broken by id -- prefilling
        admissions are the youngest of all) is evicted
        recompute-on-readmit: its reservation is released, its KV and
        partial prefill progress are dropped, and it rejoins the *front*
        of the waiting queue so it resumes before never-admitted work.
        Evicting youngest-first keeps the oldest requests' caches intact,
        bounding the recompute loss to the work least progressed.

        Folded representatives are evicted one *member* at a time: the
        youngest member splits off as a weight-1 piece (the representative
        competes with its youngest member's id, since that is the request
        an unfolded drain would pick), its KV share is released, and it
        rejoins the waiting queue -- the rest of the membership keeps
        decoding, exactly as the unfolded schedule would.
        """
        while True:
            growth = sum(
                r.weight * self.tracker.growth_bytes(r) for r in self.running
            )
            if self.tracker.fits_bytes(growth):
                return
            candidates = self.running + self.prefilling
            if total_weight(candidates) <= 1:
                raise SchedulingError(
                    f"KV budget ({self.node.budget.description}) cannot absorb "
                    "one decode token of the sole admitted request; preemption "
                    "cannot help -- the budget is too small for this workload"
                )
            victim = max(
                candidates,
                key=lambda r: (r.last_admitted_time, r.youngest_member_id),
            )
            in_running = victim in self.running
            if victim.weight > 1:
                evicted = victim.split_youngest()
                self.tracker.release_share(victim)
            else:
                evicted = victim
                (self.running if in_running else self.prefilling).remove(victim)
                self.tracker.release(victim)
            dropped = (
                evicted.context_tokens if in_running else evicted.prefill_tokens_done
            )
            evicted.record_preemption(dropped)
            self.waiting.appendleft(evicted)

    # --- timing helpers --------------------------------------------------------

    def _iteration_seconds(self) -> float:
        running = self.running
        members = total_weight(running)
        if self.policy.padded:
            # Padded execution: every slot of the formed batch pays for the
            # longest live context, even after its own request finished.
            batch = max(self._batch_slots, members)
            context = max(r.context_tokens for r in running)
        else:
            batch = members
            # Weighted mean context: the sums are integers, so this equals
            # the unfolded per-member mean bit for bit.
            context = round(
                sum(r.weight * r.context_tokens for r in running) / members
            )
        seconds = (
            self.node.step_time.step_seconds(batch, max(1, context))
            * self._slow_factor
        )
        if self.tiered:
            # Offloaded attention: KV resident below the compute tier is
            # re-read at the holding tier's near-storage rate.  Zero spill
            # adds nothing, so fully-resident batches are untouched.
            extra = self.tracker.spill_read_seconds(running, self.node.step_time)
            if extra > 0.0:
                seconds += extra * self._slow_factor
        return seconds

    def _bill_kv_movement(self):
        """Yield one timeout for accumulated tier transfers (tiered only).

        Demotions and promotions accumulate seconds on the tracker; this
        drains the bill into a single simulated wait so all KV movement is
        paid through the DES.  No movement yields nothing, keeping the
        event sequence identical to a flat drain.
        """
        seconds = self.tracker.consume_transfer_seconds()
        if seconds > 0.0:
            yield self.sim.timeout(seconds * self._slow_factor)

    def _retire_finished(self) -> None:
        for request in [
            r for r in self.running if r.tokens_generated >= r.output_tokens
        ]:
            request.completion_time = self.sim.now
            self.tracker.release(request)
            self.running.remove(request)
            if self.driver is not None:
                self.driver.note_finished(request)
