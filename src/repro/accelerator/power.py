"""Accelerator power model anchored to Table 3's measured on-chip power.

The reported figures comprise static, dynamic, and PCIe transceiver power;
the shipped builds measure 11.25 W (d_group=1), 15.39 W (d_group=4) and
16.08 W (d_group=5), peaking just under the SmartSSD's power envelope.  As
with resources, measured builds return exact values and other group sizes a
least-squares fit.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.errors import ConfigurationError

#: Table 3 measured total on-chip power (W).
MEASURED_POWER_W: dict[int, float] = {1: 11.25, 4: 15.39, 5: 16.08}

#: Idle (static + transceiver) floor of the FPGA+SSD package.
STATIC_POWER_W = 8.0


def accelerator_power_w(config: AcceleratorConfig | int) -> float:
    """Total on-chip power of one accelerator build (W)."""
    d_group = config.d_group if isinstance(config, AcceleratorConfig) else int(config)
    if d_group < 1:
        raise ConfigurationError("d_group must be >= 1")
    if d_group in MEASURED_POWER_W:
        return MEASURED_POWER_W[d_group]
    groups = np.array(sorted(MEASURED_POWER_W), dtype=np.float64)
    values = np.array([MEASURED_POWER_W[int(g)] for g in groups])
    slope, intercept = np.polyfit(groups, values, 1)
    return float(max(STATIC_POWER_W, slope * d_group + intercept))


def deployment_power_w(n_devices: int, d_group: int = 1) -> float:
    """Power of a full NSP deployment (Section 6.2: 16 devices ~ 258 W)."""
    if n_devices < 0:
        raise ConfigurationError("device count must be non-negative")
    return n_devices * accelerator_power_w(d_group)
