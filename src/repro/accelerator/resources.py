"""FPGA resource-utilization model anchored to Table 3.

The KU15P floorplan numbers the paper measures for its three shipped
bitstreams (d_group 1, 4, 5) anchor a per-resource linear model in
``d_group``; configurations between or beyond the anchors are least-squares
interpolations/extrapolations.  The model exposes a feasibility check used
by the design-space exploration example and the Section 7.2 discussion
experiment (DSP exhaustion under a hypothetical PCIe 5.0 scale-up).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.errors import ConfigurationError

#: Table 3: measured utilization (%) per resource for the shipped builds.
MEASURED_UTILIZATION: dict[int, dict[str, float]] = {
    1: {"LUT": 38.76, "FF": 28.57, "BRAM": 51.02, "URAM": 9.38, "DSP": 10.06},
    4: {"LUT": 56.60, "FF": 39.70, "BRAM": 59.30, "URAM": 9.38, "DSP": 20.27},
    5: {"LUT": 67.40, "FF": 46.15, "BRAM": 58.49, "URAM": 9.38, "DSP": 27.79},
}

RESOURCE_KINDS = ("LUT", "FF", "BRAM", "URAM", "DSP")


@dataclass(frozen=True)
class ResourceUtilization:
    """Utilization percentages of one build."""

    d_group: int
    lut: float
    ff: float
    bram: float
    uram: float
    dsp: float
    measured: bool

    def as_dict(self) -> dict[str, float]:
        """Resource-name keyed view (Table 3 column order)."""
        return {
            "LUT": self.lut,
            "FF": self.ff,
            "BRAM": self.bram,
            "URAM": self.uram,
            "DSP": self.dsp,
        }

    @property
    def feasible(self) -> bool:
        """True when every resource fits on the device."""
        return all(value <= 100.0 for value in self.as_dict().values())

    @property
    def limiting_resource(self) -> str:
        """The resource closest to (or beyond) exhaustion."""
        usage = self.as_dict()
        return max(usage, key=usage.get)


def _linear_fit(resource: str) -> tuple[float, float]:
    """Least-squares slope/intercept of one resource over the anchors."""
    groups = np.array(sorted(MEASURED_UTILIZATION), dtype=np.float64)
    values = np.array(
        [MEASURED_UTILIZATION[int(g)][resource] for g in groups], dtype=np.float64
    )
    slope, intercept = np.polyfit(groups, values, 1)
    return float(slope), float(intercept)


def estimate_resources(config: AcceleratorConfig | int) -> ResourceUtilization:
    """Resource utilization for a build: measured rows exact, others fitted."""
    d_group = config.d_group if isinstance(config, AcceleratorConfig) else int(config)
    if d_group < 1:
        raise ConfigurationError("d_group must be >= 1")
    if d_group in MEASURED_UTILIZATION:
        row = MEASURED_UTILIZATION[d_group]
        return ResourceUtilization(
            d_group=d_group,
            lut=row["LUT"],
            ff=row["FF"],
            bram=row["BRAM"],
            uram=row["URAM"],
            dsp=row["DSP"],
            measured=True,
        )
    fitted = {}
    for resource in RESOURCE_KINDS:
        slope, intercept = _linear_fit(resource)
        fitted[resource] = max(0.0, slope * d_group + intercept)
    return ResourceUtilization(
        d_group=d_group,
        lut=fitted["LUT"],
        ff=fitted["FF"],
        bram=fitted["BRAM"],
        uram=fitted["URAM"],
        dsp=fitted["DSP"],
        measured=False,
    )


def max_feasible_d_group(limit: int = 64) -> int:
    """Largest ``d_group`` whose projected utilization still fits the FPGA."""
    best = 0
    for d_group in range(1, limit + 1):
        if estimate_resources(d_group).feasible:
            best = d_group
        else:
            break
    if best == 0:
        raise ConfigurationError("no feasible d_group found")
    return best


def dsp_count_for_throughput_scale(scale: float, baseline_dsps: int = 1968) -> int:
    """DSPs needed to scale softmax throughput by ``scale`` (Section 7.2).

    The discussion section estimates that matching a PCIe 5.0 interface
    (4x throughput) via DSP parallelization would need over 2,000 DSPs,
    exceeding the KU15P.  ``baseline_dsps`` is the KU15P's DSP count times
    the d_group=5 utilization scaled to the required parallelism.
    """
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    ku15p_dsps = 1968
    used_at_dg5 = MEASURED_UTILIZATION[5]["DSP"] / 100.0 * ku15p_dsps
    return int(round(used_at_dg5 * scale))
