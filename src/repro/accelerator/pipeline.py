"""DATAFLOW pipeline timing: blocks per second, roofline, sequence latency.

The top-level HLS kernel runs the four units as a task-level pipeline
(Section 5.4's DATAFLOW pragma), overlapping KV-block loading with the
computation of preceding blocks.  A block therefore completes at the rate of
the slower of (a) the slowest unit's cycle count and (b) the block's share
of device-DRAM bandwidth; the first block additionally pays the pipeline
fill.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.units import max_unit_cycles


@dataclass(frozen=True)
class BlockTiming:
    """Per-block timing decomposition of one accelerator build."""

    compute_seconds: float
    dram_seconds: float
    kv_bytes: int
    flops: int

    @property
    def block_seconds(self) -> float:
        """Steady-state time per block (max of compute and memory)."""
        return max(self.compute_seconds, self.dram_seconds)

    @property
    def dram_bound(self) -> bool:
        """True when device DRAM, not the MAC/softmax pipeline, governs."""
        return self.dram_seconds >= self.compute_seconds

    @property
    def gflops(self) -> float:
        """Achieved FLOP rate at the steady-state block rate."""
        return self.flops / self.block_seconds / 1e9

    @property
    def kv_bandwidth(self) -> float:
        """KV bytes processed per second at the steady-state block rate."""
        return self.kv_bytes / self.block_seconds


def block_timing(
    config: AcceleratorConfig, include_ingest: bool = False
) -> BlockTiming:
    """Timing of one 128-token block.

    ``include_ingest=True`` adds the flash-to-DRAM P2P write of the same KV
    bytes to the DRAM budget -- the sustained operating mode where the
    kernel consumes data as the SSD delivers it (the Figure 12a kernel
    microbenchmark).  ``False`` gives the DRAM-roofline peak reported in
    Table 3 (data already resident).
    """
    compute = max_unit_cycles(config) / config.clock_hz
    kv_bytes = config.kv_bytes_per_block()
    dram_bytes = kv_bytes + config.staging_bytes_per_block()
    if include_ingest:
        dram_bytes += kv_bytes
    dram = dram_bytes / config.dram_bandwidth
    return BlockTiming(
        compute_seconds=compute,
        dram_seconds=dram,
        kv_bytes=kv_bytes,
        flops=config.flops_per_block(),
    )


def sequence_latency(
    config: AcceleratorConfig,
    seq_len: int,
    n_tiles: int = 1,
    include_ingest: bool = True,
) -> float:
    """Latency to attend over ``seq_len`` cached tokens for ``n_tiles`` tiles.

    A *tile* is one (batch element, KV head) pair; the device iterates tiles
    sequentially, each covering ``ceil(s/128)`` blocks, with one pipeline
    fill per kernel invocation.  This is the §5.1 performance estimator's
    core formula.
    """
    timing = block_timing(config, include_ingest=include_ingest)
    blocks = config.blocks_for_sequence(seq_len)
    fill = config.pipeline_fill_cycles / config.clock_hz
    per_tile = fill + blocks * timing.block_seconds
    return n_tiles * per_tile


def peak_gflops(config: AcceleratorConfig) -> float:
    """Table 3's "Peak Perf." -- DRAM-roofline FLOP rate, data resident."""
    return block_timing(config, include_ingest=False).gflops
