"""Cycle models of the four accelerator pipeline units (Figure 7b-e).

Each function returns the cycles one unit needs to process one 128-token
block for one query group.  The numbers follow the HLS structure described
in Sections 4.4 and 5.4:

* the GEMV units run 128 MAC lanes at initiation interval 1, so a block
  takes ``head_dim`` accumulation cycles (one per reduction element);
* the online transpose overlaps with accumulation (dedicated K-Buf/K^T-Buf
  BRAMs), adding only its fill latency;
* the softmax units stream ``d_group x 128`` elements through exponential
  units unrolled by ``exp_unroll`` and a reduction tree of depth
  ``reduction_depth``.
"""

from __future__ import annotations

from repro.accelerator.config import AcceleratorConfig
from repro.units import ceil_div


def qk_unit_cycles(config: AcceleratorConfig) -> int:
    """Query-key product unit: blocked GEMV with online transpose (Fig. 7d).

    128 MAC lanes each own one key column; the dot product over ``head_dim``
    elements takes ``head_dim`` cycles at II=1.  The local 128x128 transpose
    is double-buffered and hidden behind accumulation except for its fill.
    """
    accumulation = config.head_dim
    transpose_fill = config.block_tokens // 4  # 4 elements per cycle into K^T-Buf
    return accumulation + transpose_fill


def softmax_stats_cycles(config: AcceleratorConfig) -> int:
    """Softmax statistics aggregation unit: pass 1 of Algorithm 1 (Fig. 7b).

    Every element of the ``d_group x 128`` score block passes through an
    exponential unit (DSP-heavy, so only ``exp_unroll`` operate in
    parallel), then a two-level reduction tree of ``reduction_depth``
    produces the block max and partial sum for the streaming update unit.
    """
    elements = config.d_group * config.block_tokens
    exp_cycles = ceil_div(elements, config.exp_unroll)
    tree_cycles = config.reduction_depth * 2  # max tree + sum tree
    streaming_update = 4  # running (m, Z) update, lines 5-9
    return exp_cycles + tree_cycles + streaming_update


def softmax_norm_cycles(config: AcceleratorConfig) -> int:
    """Softmax normalization unit: pass 2 of Algorithm 1 (Fig. 7c).

    Element-wise ``exp(x - m) / Z`` over the same score block; the divider
    is pipelined with the exponential units, so throughput is again set by
    ``exp_unroll``.
    """
    elements = config.d_group * config.block_tokens
    return ceil_div(elements, config.exp_unroll) + config.reduction_depth


def sv_unit_cycles(config: AcceleratorConfig) -> int:
    """Score-value product unit (Fig. 7e).

    The normalized score row (128 wide) multiplies the value block into the
    per-query output accumulators; with 128 MAC lanes this takes
    ``head_dim`` cycles (one output element per cycle) per query group,
    because the broadcast V-Buf serves all ``d_group`` rows concurrently.
    """
    return config.head_dim + config.reduction_depth


def max_unit_cycles(config: AcceleratorConfig) -> int:
    """Cycles of the slowest pipeline stage (sets the DATAFLOW block rate)."""
    return max(
        qk_unit_cycles(config),
        softmax_stats_cycles(config),
        softmax_norm_cycles(config),
        sv_unit_cycles(config),
    )


def softmax_fraction(config: AcceleratorConfig) -> float:
    """Share of per-block unit cycles spent in the two softmax units.

    Section 7.2 observes softmax dominates (>50%) as ``d_group`` grows; this
    diagnostic reproduces that trend for the discussion experiments.
    """
    softmax = softmax_stats_cycles(config) + softmax_norm_cycles(config)
    total = (
        qk_unit_cycles(config)
        + softmax
        + sv_unit_cycles(config)
    )
    return softmax / total
