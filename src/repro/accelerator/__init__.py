"""Models of the HILOS near-storage attention accelerator (Section 4.4).

The real accelerator is an HLS design on the SmartSSD's Kintex UltraScale+
KU15P FPGA.  This package reproduces the paper's own modeling methodology:
a cycle-count performance estimator (Section 5.1 reports Pearson r = 0.93
against hardware), an FPGA resource-utilization model anchored to Table 3,
and an on-chip power model.
"""

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.estimator import (
    PerformanceEstimator,
    kernel_throughput,
    ssd_feed_throughput,
)
from repro.accelerator.pipeline import BlockTiming, block_timing, sequence_latency
from repro.accelerator.power import accelerator_power_w
from repro.accelerator.resources import ResourceUtilization, estimate_resources
from repro.accelerator.units import (
    qk_unit_cycles,
    softmax_norm_cycles,
    softmax_stats_cycles,
    sv_unit_cycles,
)

__all__ = [
    "AcceleratorConfig",
    "PerformanceEstimator",
    "kernel_throughput",
    "ssd_feed_throughput",
    "BlockTiming",
    "block_timing",
    "sequence_latency",
    "accelerator_power_w",
    "ResourceUtilization",
    "estimate_resources",
    "qk_unit_cycles",
    "softmax_norm_cycles",
    "softmax_stats_cycles",
    "sv_unit_cycles",
]
