"""The performance estimator of Section 5.1 and the Figure 12a kernel curves.

The paper ships a cycle-count estimator so users can predict accelerator
throughput before committing to hours of FPGA synthesis; across sequence
lengths 4K-32K it correlates with measured hardware at Pearson r = 0.93.
This module is that estimator: it converts the pipeline's block timing into
kernel throughput (GB/s of KV processed) and sequence latencies, and feeds
the ANS timing model the accelerator's service bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.pipeline import block_timing, sequence_latency
from repro.errors import ConfigurationError
from repro.units import GB

#: Per-group pipeline overhead on the sustained kernel rate.  Larger query
#: groups stress the exponential units and deepen the score staging, which
#: the paper observes as slightly lower GB/s for GQA kernels (Figure 12a).
GROUP_OVERHEAD_PER_STEP = 0.05

#: The SmartSSD's internal P2P read rate (the "SSD Read" series of Fig 12a).
P2P_READ_BANDWIDTH = 3.0 * GB


def kernel_throughput(config: AcceleratorConfig) -> float:
    """Sustained kernel rate in KV bytes/s while data streams in from flash.

    The kernel shares device DRAM with the P2P ingest of the very bytes it
    is processing, so the sustained rate is roughly the DRAM-roofline rate
    divided by two plus staging -- landing in the 4-6 GB/s band of
    Figure 12a, comfortably above the ~3 GB/s flash feed.
    """
    timing = block_timing(config, include_ingest=True)
    overhead = 1.0 + GROUP_OVERHEAD_PER_STEP * (config.d_group - 1)
    return timing.kv_bandwidth / overhead


def ssd_feed_throughput() -> float:
    """The flash P2P read bandwidth the kernels must outpace (Fig. 12a)."""
    return P2P_READ_BANDWIDTH


def effective_device_bandwidth(config: AcceleratorConfig) -> float:
    """End-to-end KV processing rate of one NSP device.

    The pipeline is feed-limited when the kernel outpaces flash (the design
    point the paper engineers for) and kernel-limited otherwise.
    """
    return min(kernel_throughput(config), P2P_READ_BANDWIDTH)


@dataclass(frozen=True)
class EstimatePoint:
    """One estimator sample: sequence length -> predicted latency/throughput."""

    seq_len: int
    latency_seconds: float
    kv_bytes: int

    @property
    def throughput(self) -> float:
        """KV bytes per second."""
        return self.kv_bytes / self.latency_seconds


class PerformanceEstimator:
    """Predicts kernel latency from cycle counts and the HLS clock (§5.1)."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config

    def estimate(self, seq_len: int, n_tiles: int = 1) -> EstimatePoint:
        """Predicted latency for attending over ``seq_len`` cached tokens."""
        if seq_len <= 0:
            raise ConfigurationError("sequence length must be positive")
        latency = sequence_latency(
            self.config, seq_len, n_tiles=n_tiles, include_ingest=True
        )
        kv_bytes = (
            n_tiles
            * 2
            * seq_len
            * self.config.head_dim
            * self.config.element_bytes
        )
        return EstimatePoint(seq_len=seq_len, latency_seconds=latency, kv_bytes=kv_bytes)

    def sweep(self, seq_lens: list[int]) -> list[EstimatePoint]:
        """Estimates across sequence lengths (the §5.1 validation sweep)."""
        return [self.estimate(s) for s in seq_lens]
