"""ASIC variant of the attention accelerator (Section 7.1).

For the envisioned ISP device the paper synthesizes the d_group=1 design
with the OpenROAD flow (Nangate45, scaled to an 8 nm-class node at the
FPGA-matching 300 MHz) and models on-chip SRAM with CACTI 7.0, reporting a
total area of **0.47 mm^2** and **1.13 W** on a 32K-token inference profile
-- "a reasonable overhead for ISP".

This module anchors those published numbers and provides first-order
scaling in ``d_group`` (MAC lanes and softmax units replicate; the control
plane and transpose buffers are shared), so the design-space example can
ask what a grouped-attention ASIC would cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import AcceleratorConfig
from repro.errors import ConfigurationError

#: Published OpenROAD/CACTI results for the d_group=1 build (Section 7.1).
BASE_AREA_MM2 = 0.47
BASE_POWER_W = 1.13
PROCESS_NODE_NM = 8
CLOCK_MHZ = 300.0

#: Fractions of the base design that replicate with d_group (datapath:
#: MAC lanes, exponential units, score buffers) versus fixed (control,
#: transpose buffers, AXI interfaces).
_REPLICATED_FRACTION = 0.62


@dataclass(frozen=True)
class AsicEstimate:
    """Area/power estimate of one ASIC accelerator build."""

    d_group: int
    area_mm2: float
    power_w: float
    clock_mhz: float = CLOCK_MHZ
    process_nm: int = PROCESS_NODE_NM

    @property
    def power_density_w_per_mm2(self) -> float:
        """Power density (sanity metric for the SSD-controller budget)."""
        return self.power_w / self.area_mm2


def estimate_asic(config: AcceleratorConfig | int) -> AsicEstimate:
    """Area and power of an ASIC build, anchored at the published point."""
    d_group = config.d_group if isinstance(config, AcceleratorConfig) else int(config)
    if d_group < 1:
        raise ConfigurationError("d_group must be >= 1")
    scale = (1.0 - _REPLICATED_FRACTION) + _REPLICATED_FRACTION * d_group
    return AsicEstimate(
        d_group=d_group,
        area_mm2=BASE_AREA_MM2 * scale,
        power_w=BASE_POWER_W * scale,
    )


def fits_ssd_controller_budget(
    estimate: AsicEstimate,
    area_budget_mm2: float = 5.0,
    power_budget_w: float = 3.0,
) -> bool:
    """Whether the build fits a modern SSD controller's slack.

    Controllers in the PM9A3/990 Pro class dedicate a few mm^2 and a few
    watts of margin to value-add engines (compression, crypto); the paper's
    0.47 mm^2 / 1.13 W sits comfortably inside.
    """
    return estimate.area_mm2 <= area_budget_mm2 and estimate.power_w <= power_budget_w
