"""Accelerator configuration (the HLS design parameters of Sections 4.4/5.4).

Defaults mirror the shipped bitstreams: 296.05 MHz (just under the 300 MHz
power-envelope limit), 128-token blocks, 128 MAC lanes per GEMV unit (the
count that saturates the device DRAM), exponential units unrolled by two,
and two-level reduction trees of depth four.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB, MHZ


@dataclass(frozen=True)
class AcceleratorConfig:
    """One attention-accelerator build.

    ``d_group`` is the number of query heads sharing a KV head (Table 2);
    the K/V buffers broadcast to ``d_group x 128`` MAC lanes so grouped
    queries reuse each fetched block (Section 4.4, "native support for
    attention variants").
    """

    d_group: int = 1
    head_dim: int = 128
    block_tokens: int = 128
    mac_lanes: int = 128
    clock_hz: float = 296.05 * MHZ
    exp_unroll: int = 2
    reduction_depth: int = 4
    #: Effective FPGA DRAM bandwidth (DDR4-2400, single channel, after AXI
    #: burst efficiency).  Calibrated so the DRAM-roofline peak reproduces
    #: Table 3's 11.9 / 46.8 / 56.3 GFLOPS at d_group 1 / 4 / 5.
    dram_bandwidth: float = 12.2 * GB
    #: Bytes per staged QK^T score (FP32 intermediates, Section 5.4).
    score_bytes: int = 4
    #: FP16 storage elements (Section 5.4).
    element_bytes: int = 2
    #: Pipeline fill overhead per block, cycles (AXI burst setup + unit
    #: latency through the four-stage DATAFLOW pipeline).
    pipeline_fill_cycles: int = 64

    def __post_init__(self) -> None:
        if self.d_group < 1:
            raise ConfigurationError("d_group must be >= 1")
        if self.block_tokens < 1 or self.mac_lanes < 1:
            raise ConfigurationError("block/MAC sizes must be positive")
        if self.head_dim < 1:
            raise ConfigurationError("head_dim must be positive")
        if self.exp_unroll < 1:
            raise ConfigurationError("exp_unroll must be >= 1")
        if self.clock_hz <= 0 or self.dram_bandwidth <= 0:
            raise ConfigurationError("clock and DRAM bandwidth must be positive")

    # --- derived per-block quantities -------------------------------------------

    def kv_bytes_per_block(self) -> int:
        """K + V bytes of one 128-token block (read from device DRAM)."""
        return 2 * self.block_tokens * self.head_dim * self.element_bytes

    def staging_bytes_per_block(self) -> int:
        """QK^T staging traffic: written after pass 1, re-read for pass 2."""
        scores = self.d_group * self.block_tokens * self.score_bytes
        return 2 * scores

    def flops_per_block(self) -> int:
        """Attention FLOPs per block: QK^T and score.V MACs for the group."""
        return 4 * self.d_group * self.block_tokens * self.head_dim

    def blocks_for_sequence(self, seq_len: int) -> int:
        """Blocks needed to cover ``seq_len`` tokens (zero-padded, Sec. 5.4)."""
        if seq_len < 0:
            raise ConfigurationError("sequence length must be non-negative")
        return -(-seq_len // self.block_tokens)
