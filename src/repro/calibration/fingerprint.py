"""Deterministic fingerprints of measurable system configurations.

A fingerprint must change whenever a re-measurement could produce different
numbers, and must NOT change across process restarts or dict orderings.  It
therefore hashes a canonical JSON rendering of:

* the system's class name and public figure label,
* every field of its :class:`~repro.models.config.ModelConfig`,
* every field of its :class:`~repro.sim.topology.HardwareConfig`
  (recursively, covering GPU/CPU/SSD spec dataclasses),
* the measurement grid (batch sizes, context lengths, steps per cell), and
* the library version -- any release may change simulator behaviour, so
  grids never survive a :data:`repro.__version__` bump.

Fields are rendered with ``repr``-stable primitives only (numbers, strings,
booleans, lists); nested dataclasses and enums are unfolded recursively.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

from repro.errors import ConfigurationError

#: Bump when the fingerprint rendering itself changes shape.
FINGERPRINT_SCHEME = 1


def canonical_value(value: Any) -> Any:
    """Fold a config value into JSON-stable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        folded = {
            field.name: canonical_value(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        folded["__dataclass__"] = type(value).__name__
        return folded
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, dict):
        return {str(k): canonical_value(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise ConfigurationError(
        f"cannot fingerprint value of type {type(value).__name__}: {value!r}"
    )


#: Behaviour-affecting scalar knobs that live on the system object itself
#: rather than in its model/hardware configs.  Reflected into the payload
#: when present so two systems differing only in, say, their framework
#: staging bandwidth cannot collide on one grid.
_SYSTEM_TUNABLE_ATTRS = (
    "per_layer_overhead_s",
    "weight_staging_bandwidth",
    "staging_bandwidth",
    "uvm_bandwidth",
)


def fingerprint_payload(
    system: Any,
    batch_grid: tuple[int, ...],
    seq_grid: tuple[int, ...],
    n_steps: int,
    warmup_steps: int,
    semantics: str = "billed-step",
) -> dict:
    """The canonical description that :func:`system_fingerprint` hashes.

    Exposed separately so the store can persist it next to each grid,
    making cache files self-describing (and collisions debuggable).

    ``semantics`` names what the persisted cells *mean* (e.g. the serving
    grids bill clamped batches at a scaled step time, figure points store
    the raw step), so consumers with different cell semantics can never
    serve each other's values even on identical (system, grid) inputs.
    Besides model and hardware, the payload reflects the system's own
    behavioural config (``system.config``, e.g. ``HilosConfig``'s feature
    flags) and the scalar tunables above -- anything that could change a
    measured number must change the fingerprint.
    """
    from repro import __version__

    return {
        "scheme": FINGERPRINT_SCHEME,
        "repro_version": __version__,
        "semantics": semantics,
        "system_class": type(system).__name__,
        "system_name": getattr(system, "name", type(system).__name__),
        "system_config": canonical_value(getattr(system, "config", None)),
        "system_tunables": {
            attr: canonical_value(getattr(system, attr))
            for attr in _SYSTEM_TUNABLE_ATTRS
            if isinstance(getattr(system, attr, None), (int, float))
        },
        "model": canonical_value(system.model),
        "hardware": canonical_value(system.hardware_config()),
        "batch_grid": list(batch_grid),
        "seq_grid": list(seq_grid),
        "n_steps": n_steps,
        "warmup_steps": warmup_steps,
    }


def system_fingerprint(
    system: Any,
    batch_grid: tuple[int, ...],
    seq_grid: tuple[int, ...],
    n_steps: int = 1,
    warmup_steps: int = 0,
    semantics: str = "billed-step",
) -> str:
    """Hex digest identifying one (system, measurement grid) combination."""
    payload = fingerprint_payload(
        system, batch_grid, seq_grid, n_steps, warmup_steps, semantics=semantics
    )
    rendered = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()
