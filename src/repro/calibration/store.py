"""Two-layer persistent store for measured calibration grids.

Layout: one JSON file per fingerprint under the store root::

    <root>/<fingerprint>.json
    {
      "format": 1,
      "repro_version": "1.2.0",
      "fingerprint": "ab12...",
      "description": { ...canonical fingerprint payload... },
      "step_seconds": {"16,4096": 8.579831, ...},
      "prefill_seconds": {"16,8542": 112.4, ...},
      "breakdown_seconds": {"16,4096": {"load_kv": 5.1, ...}, ...}
    }

``breakdown_seconds`` is optional (absent for serving grids): the figure
harnesses persist per-phase second stacks next to each step cell so warm
re-runs can regenerate the paper's breakdown charts without re-simulating.

The in-memory layer is process-wide and keyed by (store root, fingerprint),
so every experiment in one process (e.g. the serving system x policy sweep,
or a ``--jobs`` worker running several figures) that uses the same store
directory shares measurements without touching the disk twice, while
distinct directories remain fully independent caches.  Writes go through a temp-file + ``os.replace``
so concurrent runner workers can never observe a torn file; last writer
wins, which is safe because identical fingerprints imply identical
measured values.

Entries are invalidated (treated as a miss and overwritten) when either
the on-disk ``format`` or the recorded ``repro_version`` differs from the
running library -- a version bump may change simulator behaviour and hence
every measured number.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

#: On-disk schema version; bump on incompatible layout changes.
STORE_FORMAT = 1

#: Environment variable overriding the default store directory.
STORE_DIR_ENV = "REPRO_CALIBRATION_DIR"

#: Process-wide in-memory layer, keyed by (resolved store root, fingerprint)
#: so two stores over the same directory share measurements while stores
#: over different directories stay independent (each must see its own
#: misses, or the second store would never be written to disk).
_MEMORY: dict[tuple[str, str], dict] = {}


def _grid_key(batch: int, seq_len: int) -> str:
    return f"{batch},{seq_len}"


def _parse_grid_key(key: str) -> tuple[int, int]:
    batch, seq_len = key.split(",")
    return int(batch), int(seq_len)


def default_store_dir() -> Path:
    """Resolve the store directory (env override, else a user cache dir)."""
    env = os.environ.get(STORE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "calibration"


def default_store() -> "CalibrationStore":
    """A store rooted at :func:`default_store_dir` (created lazily)."""
    return CalibrationStore(default_store_dir())


def resolve_store(
    store: "CalibrationStore | None", use_store: bool
) -> "CalibrationStore | None":
    """The one precedence rule every experiment harness applies.

    ``use_store=False`` wins over an explicit store -- "measure from
    scratch" must mean exactly that; otherwise an explicit store is used
    as given, and ``None`` falls back to the shared default store.
    """
    if not use_store:
        return None
    return store if store is not None else default_store()


def clear_memory_layer() -> None:
    """Drop the process-wide layer (tests and long-lived daemons)."""
    _MEMORY.clear()


class CalibrationStore:
    """Fingerprint-keyed persistence for measured step/prefill grids."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._dirty: dict[str, dict | None] = {}
        self._atexit_registered = False

    # --- internal helpers -------------------------------------------------------

    def _path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def _load_disk(self, fingerprint: str) -> dict | None:
        """Read one grid file; ``None`` on miss, corruption, or stale version."""
        from repro import __version__

        path = self._path(fingerprint)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != STORE_FORMAT:
            return None
        if payload.get("repro_version") != __version__:
            return None
        step = payload.get("step_seconds")
        prefill = payload.get("prefill_seconds", {})
        breakdown = payload.get("breakdown_seconds", {})
        if (
            not isinstance(step, dict)
            or not isinstance(prefill, dict)
            or not isinstance(breakdown, dict)
        ):
            return None
        try:
            # Normalize every cell eagerly: a syntactically-valid JSON file
            # with malformed cells (bad grid keys, non-numeric values) is
            # corruption and must read as a miss, not crash later loads.
            entry = {
                "step_seconds": {key: float(value) for key, value in step.items()},
                "prefill_seconds": {key: float(value) for key, value in prefill.items()},
                "breakdown_seconds": {
                    key: {str(phase): float(v) for phase, v in value.items()}
                    for key, value in breakdown.items()
                },
            }
            for grids in entry.values():
                for key in grids:
                    _parse_grid_key(key)
        except (AttributeError, TypeError, ValueError):
            return None
        return entry

    def _memory_key(self, fingerprint: str) -> tuple[str, str]:
        return (str(self.root.resolve()), fingerprint)

    def _entry(self, fingerprint: str) -> dict:
        """The in-memory entry for a fingerprint, hydrated from disk once."""
        key = self._memory_key(fingerprint)
        entry = _MEMORY.get(key)
        if entry is None:
            entry = self._load_disk(fingerprint) or {
                "step_seconds": {},
                "prefill_seconds": {},
                "breakdown_seconds": {},
            }
            entry.setdefault("breakdown_seconds", {})
            _MEMORY[key] = entry
        return entry

    # --- read side --------------------------------------------------------------

    def load_step_grid(self, fingerprint: str) -> dict[tuple[int, int], float]:
        """All persisted step-time cells for a fingerprint."""
        entry = self._entry(fingerprint)
        return {
            _parse_grid_key(key): float(value)
            for key, value in entry["step_seconds"].items()
        }

    def load_prefill_grid(self, fingerprint: str) -> dict[tuple[int, int], float]:
        """All persisted prefill cells for a fingerprint."""
        entry = self._entry(fingerprint)
        return {
            _parse_grid_key(key): float(value)
            for key, value in entry["prefill_seconds"].items()
        }

    def load_breakdown_grid(
        self, fingerprint: str
    ) -> dict[tuple[int, int], dict[str, float]]:
        """All persisted per-phase breakdown stacks for a fingerprint."""
        entry = self._entry(fingerprint)
        return {
            _parse_grid_key(key): {phase: float(v) for phase, v in value.items()}
            for key, value in entry["breakdown_seconds"].items()
        }

    # --- write side -------------------------------------------------------------

    def record(
        self,
        fingerprint: str,
        description: dict | None = None,
        step_cells: dict[tuple[int, int], float] | None = None,
        prefill_cells: dict[tuple[int, int], float] | None = None,
        breakdown_cells: dict[tuple[int, int], dict[str, float]] | None = None,
        flush: bool = True,
    ) -> None:
        """Merge newly measured cells into the memory layer.

        With ``flush=True`` (the default) the grid file is rewritten
        immediately.  ``flush=False`` defers the disk write -- callers with
        a natural batch boundary (a queue drain, a sweep) call
        :meth:`flush_dirty` there; an ``atexit`` hook flushes whatever is
        still pending so a forgotten flush degrades to exit-time
        persistence, never to data loss.
        """
        entry = self._entry(fingerprint)
        if step_cells:
            for (batch, seq_len), value in step_cells.items():
                entry["step_seconds"][_grid_key(batch, seq_len)] = value
        if prefill_cells:
            for (batch, seq_len), value in prefill_cells.items():
                entry["prefill_seconds"][_grid_key(batch, seq_len)] = value
        if breakdown_cells:
            for (batch, seq_len), value in breakdown_cells.items():
                entry["breakdown_seconds"][_grid_key(batch, seq_len)] = dict(value)
        if flush:
            self._flush(fingerprint, entry, description)
            self._dirty.pop(fingerprint, None)
        else:
            self._dirty.setdefault(fingerprint, None)
            if description is not None:
                self._dirty[fingerprint] = description
            if not self._atexit_registered:
                import atexit

                atexit.register(self.flush_dirty)
                self._atexit_registered = True

    def flush_dirty(self) -> int:
        """Write every deferred-dirty fingerprint to disk; returns the count."""
        flushed = 0
        for fingerprint, description in list(self._dirty.items()):
            entry = _MEMORY.get(self._memory_key(fingerprint))
            if entry is not None:
                self._flush(fingerprint, entry, description)
                flushed += 1
            self._dirty.pop(fingerprint, None)
        return flushed

    def _flush(self, fingerprint: str, entry: dict, description: dict | None) -> None:
        from repro import __version__

        self.root.mkdir(parents=True, exist_ok=True)
        # Merge the current on-disk cells first: a concurrent worker may
        # have persisted cells this process never measured, and a plain
        # read-modify-write of our in-memory entry would drop them.  Equal
        # fingerprints imply equal values per cell, so merge direction is
        # irrelevant for overlapping keys; stale-version files yield None
        # and are overwritten wholesale.
        on_disk = self._load_disk(fingerprint)
        step = dict(on_disk["step_seconds"]) if on_disk else {}
        prefill = dict(on_disk["prefill_seconds"]) if on_disk else {}
        breakdown = dict(on_disk["breakdown_seconds"]) if on_disk else {}
        step.update(entry["step_seconds"])
        prefill.update(entry["prefill_seconds"])
        breakdown.update(entry["breakdown_seconds"])
        # Adopt the merged view in the memory layer too, so this process
        # also benefits from cells a concurrent worker persisted.
        entry["step_seconds"] = step
        entry["prefill_seconds"] = prefill
        entry["breakdown_seconds"] = breakdown
        payload = {
            "format": STORE_FORMAT,
            "repro_version": __version__,
            "fingerprint": fingerprint,
            "description": description or {},
            "step_seconds": dict(sorted(step.items())),
            "prefill_seconds": dict(sorted(prefill.items())),
            "breakdown_seconds": dict(sorted(breakdown.items())),
        }
        # Atomic replace: concurrent --jobs workers may flush the same
        # fingerprint; a torn read is impossible and last-writer-wins is
        # sound because equal fingerprints imply equal measurements.
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=f".{fingerprint[:16]}", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, indent=1)
            os.replace(tmp_name, self._path(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # --- maintenance ------------------------------------------------------------

    def fingerprints_on_disk(self) -> list[str]:
        """Fingerprints with a (possibly stale) file under the root."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))

    def drop(self, fingerprint: str) -> None:
        """Forget one fingerprint in both layers."""
        _MEMORY.pop(self._memory_key(fingerprint), None)
        try:
            os.unlink(self._path(fingerprint))
        except OSError:
            pass
