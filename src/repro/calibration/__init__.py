"""Persistent calibration cache for measured step-time grids.

Measuring one ``(batch, seq_len)`` cell of a :class:`~repro.serving.steptime.CalibratedStepTime`
grid runs the full event-level simulation of the system -- tens of
milliseconds per cell, times dozens of cells, times every system in a sweep,
times every re-run of every experiment.  The grids are pure functions of the
system description, so this package fingerprints that description and
persists measured grids:

:func:`system_fingerprint`
    Deterministic digest of model config + hardware topology + measurement
    grid + library version.  Two systems with identical fingerprints would
    measure identical grids.

:class:`CalibrationStore`
    Two-layer cache: a process-wide in-memory layer shared by every
    experiment in the process, over a versioned on-disk JSON store shared by
    every process that uses the same directory.  A warm store makes serving
    experiment re-runs measurement-free.

The store invalidates itself when :data:`repro.__version__` changes (any
release may change simulator behaviour, which silently changes measured
grids) and when the on-disk format version changes.
"""

from repro.calibration.fingerprint import system_fingerprint
from repro.calibration.store import CalibrationStore, default_store

__all__ = [
    "CalibrationStore",
    "default_store",
    "system_fingerprint",
]
