"""Persistent calibration cache for measured step-time grids.

Measuring one ``(batch, seq_len)`` cell of a :class:`~repro.serving.steptime.CalibratedStepTime`
grid runs the full event-level simulation of the system -- tens of
milliseconds per cell, times dozens of cells, times every system in a sweep,
times every re-run of every experiment.  The grids are pure functions of the
system description, so this package fingerprints that description and
persists measured grids:

:func:`system_fingerprint`
    Deterministic digest of model config + hardware topology + measurement
    grid + library version.  Two systems with identical fingerprints would
    measure identical grids.

:class:`CalibrationStore`
    Two-layer cache: a process-wide in-memory layer shared by every
    experiment in the process, over a versioned on-disk JSON store shared by
    every process that uses the same directory.  A warm store makes serving
    experiment re-runs measurement-free.

The store invalidates itself when :data:`repro.__version__` changes (any
release may change simulator behaviour, which silently changes measured
grids) and when the on-disk format version changes.
"""

from repro.calibration.fingerprint import system_fingerprint
from repro.calibration.store import CalibrationStore, default_store, resolve_store

__all__ = [
    "CalibrationStore",
    "FigurePointCache",
    "default_store",
    "prewarm_step_grids",
    "resolve_store",
    "system_fingerprint",
]


def __getattr__(name: str):
    # Lazy: figures/prewarm pull in the simulation stack, which would turn
    # ``import repro`` (whose __init__ imports this package for the store)
    # into a circular import at module load time.
    if name == "FigurePointCache":
        from repro.calibration.figures import FigurePointCache

        return FigurePointCache
    if name == "prewarm_step_grids":
        from repro.calibration.prewarm import prewarm_step_grids

        return prewarm_step_grids
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
