"""Fingerprinted caching for the figure harnesses' fixed measurement points.

The figure experiments (fig10's throughput comparison, fig11's batch
sensitivity) measure a small fixed set of ``(batch, seq_len)`` points per
system -- unlike the serving path they also need the per-phase *breakdown*
stacks for the paper's percentage charts, so they cannot reuse
:class:`~repro.serving.steptime.CalibratedStepTime` directly.

:class:`FigurePointCache` gives them the same once-ever measurement
guarantee: each point's steady-state step time and phase breakdown are
persisted to a :class:`~repro.calibration.CalibrationStore` under the same
deterministic fingerprint scheme the serving grids use.  A warm store makes
figure re-runs measurement-free; tokens/sec and OOM verdicts are
reconstructed from the cached cells plus the (analytic, cheap) effective
batch computation.

Measurements default to ``warmup_steps=0``, matching the serving
calibration pipeline: the event-level simulators are deterministic and
reach steady state on the first decode step (warm-up moves step times only
at the 1e-14 relative level), so the redundant warm-up simulation would
double every cold run's cost for nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.calibration.fingerprint import fingerprint_payload, system_fingerprint
from repro.calibration.store import CalibrationStore
from repro.errors import ConfigurationError
from repro.sim.metrics import Breakdown


@dataclass(frozen=True)
class FigurePoint:
    """One cached (or freshly measured) figure measurement point."""

    batch: int
    seq_len: int
    effective_batch: int
    step_seconds: float
    #: Prefill latency captured at measurement time (fig14's split); cached
    #: alongside the step time because the analytic prefill model can read
    #: state ``measure()`` mutates (e.g. HILOS's selected alpha).
    prefill_seconds: float = 0.0
    breakdown: Breakdown = field(default_factory=Breakdown)
    oom: bool = False
    note: str = ""

    @property
    def tokens_per_second(self) -> float:
        """Steady-state decode throughput (0 for OOM points)."""
        if self.oom or self.step_seconds <= 0 or self.step_seconds == float("inf"):
            return 0.0
        return self.effective_batch / self.step_seconds


class FigurePointCache:
    """measure()-compatible caching for a system's fixed figure points.

    Parameters mirror :class:`~repro.serving.steptime.CalibratedStepTime`:
    the (batch, seq) grids plus step counts define the fingerprint, so two
    runs of the same harness hit the same store file while a changed sweep
    (or library version) re-measures from scratch.  Unlike the interpolating
    serving model this cache only ever serves exact grid points -- figure
    harnesses measure the points they plot.
    """

    def __init__(
        self,
        system,
        batch_grid: tuple[int, ...],
        seq_grid: tuple[int, ...],
        n_steps: int = 1,
        warmup_steps: int = 0,
        store: CalibrationStore | None = None,
    ) -> None:
        if not batch_grid or not seq_grid:
            raise ConfigurationError("figure grids must be non-empty")
        self.system = system
        self.batch_grid = tuple(sorted(set(batch_grid)))
        self.seq_grid = tuple(sorted(set(seq_grid)))
        self.n_steps = n_steps
        self.warmup_steps = warmup_steps
        self.store = store
        #: Full-simulator ``measure()`` runs performed by this instance
        #: (store hits do not count); zero on a warm re-run.
        self.measurement_count = 0
        self._step: dict[tuple[int, int], float] = {}
        self._prefill: dict[tuple[int, int], float] = {}
        self._breakdown: dict[tuple[int, int], dict[str, float]] = {}
        self._fingerprint: str | None = None
        self._hydrated = store is None

    #: Figure points persist the *raw* steady-state step time (tokens/s is
    #: effective_batch / step), unlike the serving grids, which bill
    #: clamped batches at a scaled step; distinct fingerprint semantics
    #: keep the two cell meanings from ever colliding on one store file.
    #: The prefill suffix marks cells whose prefill sibling is recorded in
    #: the same measurement (fig14's split needs both halves coherent).
    SEMANTICS = "raw-step+prefill+breakdown"

    @property
    def fingerprint(self) -> str:
        """Deterministic identity of this (system, point grid) combination."""
        if self._fingerprint is None:
            self._fingerprint = system_fingerprint(
                self.system,
                self.batch_grid,
                self.seq_grid,
                n_steps=self.n_steps,
                warmup_steps=self.warmup_steps,
                semantics=self.SEMANTICS,
            )
        return self._fingerprint

    def prewarm(self) -> int:
        """Hydrate the point cache from the store; returns cells now cached."""
        if self.store is not None:
            self._step.update(self.store.load_step_grid(self.fingerprint))
            self._prefill.update(self.store.load_prefill_grid(self.fingerprint))
            self._breakdown.update(self.store.load_breakdown_grid(self.fingerprint))
        self._hydrated = True
        return len(self._step)

    @property
    def cached_points(self) -> int:
        """Number of points currently cached (measured or store-loaded)."""
        return len(self._step)

    def measure(self, batch: int, seq_len: int) -> FigurePoint:
        """The measurement for one grid point, from cache when possible.

        OOM points are detected analytically (capacity planning needs no
        simulation) and never stored; everything else is measured once ever
        per store directory.
        """
        if batch not in self.batch_grid or seq_len not in self.seq_grid:
            raise ConfigurationError(
                f"point ({batch}, {seq_len}) is outside this cache's grid; "
                "figure caches serve exact grid points only"
            )
        if not self._hydrated:
            self.prewarm()
        effective = self.system.effective_batch(batch, seq_len)
        if effective == 0:
            return FigurePoint(
                batch=batch,
                seq_len=seq_len,
                effective_batch=0,
                step_seconds=float("inf"),
                oom=True,
                note="CPU OOM",
            )
        key = (batch, seq_len)
        if key not in self._step or key not in self._prefill:
            # Defensive guard: record() always writes a key's step and
            # prefill cells together, but a hand-edited or truncated store
            # file could hydrate one without the other -- treat that as a
            # miss so both halves come from one coherent measurement
            # (prefill reads measure()-mutated state).
            result = self.system.measure(
                batch, seq_len, n_steps=self.n_steps, warmup_steps=self.warmup_steps
            )
            self.measurement_count += 1
            if result.oom:
                # Placement-level OOM (e.g. staging buffers outgrow DRAM):
                # cheap to re-derive, so report without caching.
                return FigurePoint(
                    batch=batch,
                    seq_len=seq_len,
                    effective_batch=0,
                    step_seconds=float("inf"),
                    prefill_seconds=float("inf"),
                    oom=True,
                    note=result.note,
                )
            self._step[key] = result.step_seconds
            self._prefill[key] = result.prefill_seconds
            self._breakdown[key] = dict(result.breakdown.seconds)
            if self.store is not None:
                self.store.record(
                    self.fingerprint,
                    description=fingerprint_payload(
                        self.system,
                        self.batch_grid,
                        self.seq_grid,
                        self.n_steps,
                        self.warmup_steps,
                        semantics=self.SEMANTICS,
                    ),
                    step_cells={key: self._step[key]},
                    prefill_cells={key: self._prefill[key]},
                    breakdown_cells={key: self._breakdown[key]},
                    flush=False,
                )
        return FigurePoint(
            batch=batch,
            seq_len=seq_len,
            effective_batch=effective,
            step_seconds=self._step[key],
            prefill_seconds=self._prefill[key],
            breakdown=Breakdown(seconds=dict(self._breakdown.get(key, {}))),
        )

    def flush(self) -> None:
        """Persist any deferred store writes (sweep boundaries)."""
        if self.store is not None:
            self.store.flush_dirty()
