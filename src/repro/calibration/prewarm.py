"""``--jobs``-aware parallel pre-warmer for calibration step-time grids.

A cold serving sweep measures its grid cells lazily, one at a time, on the
scheduler's critical path.  On a multi-core host the cells are embarrassingly
parallel -- each is an independent full-simulator ``measure()`` run -- so the
pre-warmer fans the *missing* cells of every requested system across worker
processes and merges the results into the persistent store in one batch.
Store writes go through the store's merge-on-flush path, so concurrent
pre-warmers (or a pre-warmer racing a live experiment) can never lose each
other's cells.

Wired into ``python -m repro.experiments.runner --prewarm --jobs N``; also
usable directly::

    from repro.calibration.prewarm import prewarm_step_grids
    prewarm_step_grids(["FLEX(SSD)", "HILOS (8 SmartSSDs)"], jobs=8)
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.calibration.store import CalibrationStore, default_store

# The serving grids are the single source of truth for the defaults: a
# grid cell added there must be the one --prewarm measures, or the warmed
# store silently misses the serving sweep's queries.
from repro.serving.steptime import DEFAULT_BATCH_GRID, DEFAULT_SEQ_GRID

#: The serving experiment's model (resolved lazily from the experiment
#: module so the two can never drift apart).
DEFAULT_MODEL = None


@dataclass(frozen=True)
class PrewarmReport:
    """Outcome of pre-warming one system's grid."""

    label: str
    fingerprint: str
    total_cells: int
    already_cached: int
    measured: int
    infeasible: int

    @property
    def missing_after(self) -> int:
        """Cells still absent (infeasible placements cannot be cached)."""
        return self.total_cells - self.already_cached - self.measured


def _build_step_time(
    label: str,
    model_name: str,
    batch_grid: tuple[int, ...],
    seq_grid: tuple[int, ...],
    n_steps: int,
    warmup_steps: int,
    store: CalibrationStore | None,
):
    from repro.baselines.registry import build_inference_system
    from repro.models import get_model
    from repro.serving.steptime import CalibratedStepTime

    system = build_inference_system(label, get_model(model_name))
    return CalibratedStepTime(
        system,
        batch_grid=batch_grid,
        seq_grid=seq_grid,
        n_steps=n_steps,
        warmup_steps=warmup_steps,
        store=store,
    )


def _measure_cell_job(
    label: str,
    model_name: str,
    batch_grid: tuple[int, ...],
    seq_grid: tuple[int, ...],
    n_steps: int,
    warmup_steps: int,
    cell: tuple[int, int],
) -> tuple[str, tuple[int, int], float | None]:
    """Worker body: measure one grid cell; ``None`` marks infeasible cells.

    Top-level (picklable) for process pools.  Workers measure without a
    store and return the value -- the parent owns persistence, so a crashed
    worker can never leave a torn or partial grid behind.
    """
    from repro.errors import SchedulingError

    step_time = _build_step_time(
        label, model_name, batch_grid, seq_grid, n_steps, warmup_steps, store=None
    )
    try:
        return label, cell, step_time.step_seconds(*cell)
    except SchedulingError:
        # The placement cannot decode this (batch, seq_len) at all (e.g.
        # FLEX(DRAM) OOM): nothing to cache, the drain-time query will
        # re-derive the refusal cheaply.
        return label, cell, None


def prewarm_step_grids(
    labels: list[str],
    model_name: str | None = DEFAULT_MODEL,
    batch_grid: tuple[int, ...] = DEFAULT_BATCH_GRID,
    seq_grid: tuple[int, ...] = DEFAULT_SEQ_GRID,
    store: CalibrationStore | None = None,
    jobs: int = 1,
    n_steps: int = 1,
    warmup_steps: int = 0,
) -> list[PrewarmReport]:
    """Measure every missing cell of every system's grid, in parallel.

    Hydrates each system's grid from ``store`` (default: the shared
    persistent store), fans the missing cells across ``jobs`` worker
    processes, records the results, and flushes once at the end through the
    store's merge-on-flush path.  Returns one report per system.
    ``model_name=None`` resolves to the serving experiment's model.
    """
    if model_name is None:
        from repro.experiments.serving_throughput import MODEL

        model_name = MODEL
    if store is None:
        store = default_store()
    step_times = {}
    missing: list[tuple[str, tuple[int, int]]] = []
    already: dict[str, int] = {}
    for label in labels:
        step_time = _build_step_time(
            label, model_name, batch_grid, seq_grid, n_steps, warmup_steps, store
        )
        already[label] = step_time.prewarm()
        step_times[label] = step_time
        missing.extend((label, cell) for cell in step_time.missing_cells())

    measured: dict[str, int] = {label: 0 for label in labels}
    infeasible: dict[str, int] = {label: 0 for label in labels}

    def _record(label: str, cell: tuple[int, int], value: float | None) -> None:
        if value is None:
            infeasible[label] += 1
            return
        measured[label] += 1
        step_times[label].seed_cell(cell, value)

    if missing and jobs > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(missing))) as pool:
            futures = [
                pool.submit(
                    _measure_cell_job,
                    label,
                    model_name,
                    batch_grid,
                    seq_grid,
                    n_steps,
                    warmup_steps,
                    cell,
                )
                for label, cell in missing
            ]
            for future in futures:
                _record(*future.result())
    else:
        for label, cell in missing:
            _record(*_measure_cell_job(
                label, model_name, batch_grid, seq_grid, n_steps, warmup_steps, cell
            ))
    store.flush_dirty()
    return [
        PrewarmReport(
            label=label,
            fingerprint=step_times[label].fingerprint,
            total_cells=len(step_times[label].batch_grid)
            * len(step_times[label].seq_grid),
            already_cached=already[label],
            measured=measured[label],
            infeasible=infeasible[label],
        )
        for label in labels
    ]
