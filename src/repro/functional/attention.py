"""Reference attention kernels (MHA and GQA).

These are the oracles that every optimized path -- the blocked accelerator
emulation, the X-cache recompute path, and the delayed-writeback composition
-- must match.  They compute in float64 via :func:`reference_softmax` so the
comparison tolerance is dominated by the FP16 storage quantization of the
system under test, not by the oracle itself.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NumericsError
from repro.functional.softmax import MASK_VALUE, reference_softmax


def reference_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: float | None = None,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Exact scaled-dot-product attention for one head.

    Parameters
    ----------
    q:
        Queries of shape ``(n_q, d)``.
    k, v:
        Keys and values of shape ``(s, d)``.
    scale:
        Score scale; defaults to ``1/sqrt(d)`` (Equation 2).
    mask:
        Optional boolean of shape broadcastable to ``(n_q, s)``; ``False``
        positions are masked with the paper's ``-1e4`` constant.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if q.ndim != 2 or k.ndim != 2 or v.ndim != 2:
        raise NumericsError("reference_attention expects 2-D q, k, v")
    if k.shape != v.shape:
        raise NumericsError(f"k/v shape mismatch: {k.shape} vs {v.shape}")
    if q.shape[1] != k.shape[1]:
        raise NumericsError(f"q/k head-dim mismatch: {q.shape[1]} vs {k.shape[1]}")
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[1])
    scores = (q @ k.T) * scale
    if mask is not None:
        scores = np.where(mask, scores, MASK_VALUE)
    probs = reference_softmax(scores, axis=-1)
    return probs @ v


def grouped_query_attention(
    q_group: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: float | None = None,
) -> np.ndarray:
    """GQA for one KV head: ``d_group`` query heads share one K/V cache.

    ``q_group`` has shape ``(d_group, d)``.  Functionally this is ordinary
    attention with several query rows; the hardware distinction (broadcasting
    the K/V buffers to ``d_group x 128`` MAC lanes so shared KV data is read
    once, Section 4.4) is a performance property modeled in
    :mod:`repro.accelerator`.
    """
    return reference_attention(q_group, k, v, scale=scale)


def multihead_decode_attention(
    q: np.ndarray,
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    n_query_heads: int | None = None,
) -> np.ndarray:
    """One decode step of multi-head (or grouped-query) attention.

    Parameters
    ----------
    q:
        Queries of shape ``(batch, n_heads, d)`` -- one new token per
        sequence.
    k_cache, v_cache:
        Caches of shape ``(batch, n_kv_heads, s, d)``.
    n_query_heads:
        Defaults to ``q.shape[1]``; must be a multiple of ``n_kv_heads``.

    Returns
    -------
    Attention outputs of shape ``(batch, n_heads, d)``.
    """
    q = np.asarray(q, dtype=np.float64)
    batch, n_heads, head_dim = q.shape
    if n_query_heads is None:
        n_query_heads = n_heads
    n_kv_heads = k_cache.shape[1]
    if n_heads % n_kv_heads != 0:
        raise NumericsError(
            f"n_heads ({n_heads}) must be a multiple of n_kv_heads ({n_kv_heads})"
        )
    d_group = n_heads // n_kv_heads
    out = np.empty((batch, n_heads, head_dim), dtype=np.float64)
    for b in range(batch):
        for kv_head in range(n_kv_heads):
            q_rows = q[b, kv_head * d_group : (kv_head + 1) * d_group, :]
            result = grouped_query_attention(
                q_rows, k_cache[b, kv_head], v_cache[b, kv_head]
            )
            out[b, kv_head * d_group : (kv_head + 1) * d_group, :] = result
    return out
