"""End-to-end functional decode engine for losslessness verification.

The paper's correctness claim (Section 7.1, Figure 18c) is that HILOS's
accelerator and its optimizations are *numerically lossless*: attention near
storage, the cooperative X-cache, and delayed KV writeback all compute the
same attention as a dense FlashAttention baseline, unlike sparse-retrieval
schemes.  This module makes that claim executable.

:class:`FunctionalDecoder` runs a miniature randomly initialized decoder-only
transformer through prefill and decoding under a configurable
:class:`ExecutionPlan`:

* ``baseline``   -- dense reference attention, direct per-token KV commits;
* ``ans``        -- the blocked accelerator kernel (Figure 7 dataflow);
* ``+x_cache``   -- an :math:`\\alpha` fraction of the batch served by
  recomputing K/V from stored pre-projection activations ``X``;
* ``+writeback`` -- staged KV entries with host-side partial ``QK^T``
  scalars and periodic page-aligned spills.

All plans quantize cached tensors to FP16 at the same boundaries, so their
outputs agree to within FP32 summation-order noise; the integration tests
assert this across plans, models (MHA/GQA/RoPE), and sequence lengths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError, NumericsError
from repro.functional.attention import reference_attention
from repro.functional.blocked import blocked_attention
from repro.functional.kvstore import PagedStore
from repro.functional.rope import apply_rope
from repro.functional.writeback import DelayedWritebackBuffer
from repro.models.config import ModelConfig


@dataclass(frozen=True)
class ExecutionPlan:
    """How attention and cache management are executed.

    Attributes
    ----------
    use_ans:
        Compute attention with the blocked accelerator kernel instead of the
        dense reference kernel.
    x_cache_fraction:
        Fraction of the batch served via the cooperative X-cache (quantized
        to whole batch elements; the timing model handles the byte-exact
        batch x head partition).
    delayed_writeback:
        Stage new KV/X rows in host memory instead of committing each one.
    spill_interval:
        Decode steps between spills when ``delayed_writeback`` is on.
    block_size:
        Accelerator block length (tokens); 128 in hardware, smaller in tests.
    """

    name: str = "baseline"
    use_ans: bool = False
    x_cache_fraction: float = 0.0
    delayed_writeback: bool = False
    spill_interval: int = 16
    block_size: int = 128

    def __post_init__(self) -> None:
        if not 0.0 <= self.x_cache_fraction <= 1.0:
            raise ConfigurationError("x_cache_fraction must be within [0, 1]")
        if self.spill_interval < 1:
            raise ConfigurationError("spill_interval must be >= 1")

    @staticmethod
    def baseline(block_size: int = 128) -> "ExecutionPlan":
        """Dense reference attention with naive per-token writes."""
        return ExecutionPlan(name="baseline", block_size=block_size)

    @staticmethod
    def ans(block_size: int = 128) -> "ExecutionPlan":
        """Attention near storage only (Section 4.1)."""
        return ExecutionPlan(name="ans", use_ans=True, block_size=block_size)

    @staticmethod
    def hilos(
        alpha: float = 0.5, spill_interval: int = 16, block_size: int = 128
    ) -> "ExecutionPlan":
        """The full system: ANS + X-cache + delayed writeback."""
        return ExecutionPlan(
            name="hilos",
            use_ans=True,
            x_cache_fraction=alpha,
            delayed_writeback=True,
            spill_interval=spill_interval,
            block_size=block_size,
        )

    def with_(self, **kwargs) -> "ExecutionPlan":
        """A modified copy (ablation helper)."""
        return replace(self, **kwargs)


class FunctionalDecoder:
    """A tiny decoder-only transformer with pluggable cache execution plans."""

    def __init__(self, model: ModelConfig, plan: ExecutionPlan, seed: int = 0) -> None:
        self.model = model
        self.plan = plan
        rng = np.random.default_rng(seed)
        scale = 1.0 / math.sqrt(model.hidden)
        self.layers = []
        for layer_index in range(model.n_layers):
            layer = {
                "wq": self._init(rng, (model.hidden, model.n_heads * model.head_dim), scale),
                "wk": self._init(rng, (model.hidden, model.kv_proj_dim), scale),
                "wv": self._init(rng, (model.hidden, model.kv_proj_dim), scale),
                "wo": self._init(rng, (model.n_heads * model.head_dim, model.hidden), scale),
            }
            is_moe_layer = (
                model.is_moe
                and layer_index % model.moe_every == model.moe_every - 1
            )
            if is_moe_layer:
                # A mixture-of-experts MLP with top-k routing (Table 2's
                # MoE models activate two experts per token).
                layer["router"] = self._init(rng, (model.hidden, model.n_experts), scale)
                layer["experts"] = [
                    (
                        self._init(rng, (model.hidden, model.intermediate), scale),
                        self._init(rng, (model.intermediate, model.hidden), scale),
                    )
                    for _ in range(model.n_experts)
                ]
            else:
                layer["w1"] = self._init(rng, (model.hidden, model.intermediate), scale)
                layer["w2"] = self._init(rng, (model.intermediate, model.hidden), scale)
            self.layers.append(layer)
        self.kv_store = PagedStore(name="kv_store")
        self.x_store = PagedStore(name="x_store")
        self.kv_writeback = DelayedWritebackBuffer(self.kv_store, plan.spill_interval)
        self.x_writeback = DelayedWritebackBuffer(self.x_store, plan.spill_interval)
        self.context_len = 0
        self.batch_size: int | None = None
        self._n_x_managed = 0

    @staticmethod
    def _init(rng: np.random.Generator, shape: tuple[int, int], scale: float) -> np.ndarray:
        """FP16-stored weights, as on the real system."""
        return (rng.standard_normal(shape) * scale).astype(np.float16)

    # --- helpers ---------------------------------------------------------------------

    def _quantize_activation(self, x: np.ndarray) -> np.ndarray:
        """FP16 quantization at a cache boundary (storage precision)."""
        return np.asarray(x, dtype=np.float16)

    def _project(self, x16: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """FP32 GEMM on FP16 inputs (the hardware's accumulate precision)."""
        return x16.astype(np.float32) @ weight.astype(np.float32)

    def _split_heads(self, x: np.ndarray, n_heads: int) -> np.ndarray:
        """``(..., n_heads*d) -> (..., n_heads, d)``."""
        return x.reshape(*x.shape[:-1], n_heads, self.model.head_dim)

    def _is_x_managed(self, batch_index: int) -> bool:
        return batch_index < self._n_x_managed

    def _positions(self, length: int, offset: int = 0) -> np.ndarray:
        return np.arange(offset, offset + length)

    def _rope(self, x: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Apply RoPE per head when the model uses it; identity otherwise.

        ``x`` has shape ``(..., n_heads, d)`` with the sequence axis at -3
        (or absent for a single token, handled by the caller).
        """
        if not self.model.uses_rope:
            return x
        # Move heads before sequence so apply_rope sees (..., s, d).
        moved = np.moveaxis(x, -2, 0)  # (n_heads, ..., s, d) with s at -2
        rotated = apply_rope(moved, positions)
        return np.moveaxis(rotated, 0, -2)

    # --- prefill -----------------------------------------------------------------------

    def prefill(self, x: np.ndarray) -> np.ndarray:
        """Run the prompt through every layer, populating the caches.

        ``x`` is the embedded prompt of shape ``(batch, s, hidden)``.
        Returns the final hidden states.
        """
        if x.ndim != 3 or x.shape[2] != self.model.hidden:
            raise NumericsError(
                f"prefill expects (batch, s, {self.model.hidden}), got {x.shape}"
            )
        batch, seq_len, _ = x.shape
        self.batch_size = batch
        self._n_x_managed = math.ceil(self.plan.x_cache_fraction * batch)
        self.context_len = seq_len
        positions = self._positions(seq_len)
        hidden = np.asarray(x, dtype=np.float32)
        for layer_index, layer in enumerate(self.layers):
            hidden = self._prefill_layer(layer_index, layer, hidden, positions)
        return hidden

    def _prefill_layer(
        self,
        layer_index: int,
        layer: dict,
        hidden: np.ndarray,
        positions: np.ndarray,
    ) -> np.ndarray:
        model = self.model
        batch, seq_len, _ = hidden.shape
        x16 = self._quantize_activation(hidden)
        q = self._split_heads(self._project(x16, layer["wq"]), model.n_heads)
        k = self._split_heads(self._project(x16, layer["wk"]), model.n_kv_heads)
        v = self._split_heads(self._project(x16, layer["wv"]), model.n_kv_heads)
        q = self._rope(q, positions)
        k = self._rope(k, positions)
        k16 = np.asarray(k, dtype=np.float16)
        v16 = np.asarray(v, dtype=np.float16)
        causal = np.tril(np.ones((seq_len, seq_len), dtype=bool))
        attn = np.empty((batch, seq_len, model.n_heads, model.head_dim), dtype=np.float32)
        for b in range(batch):
            for head in range(model.n_heads):
                kv_head = head // model.d_group
                attn[b, :, head, :] = reference_attention(
                    q[b, :, head, :],
                    k16[b, :, kv_head, :],
                    v16[b, :, kv_head, :],
                    mask=causal,
                )
            # Persist caches in the prefill partitioning (Section 4.1).
            if self._is_x_managed(b):
                self.x_store.append(("x", layer_index, b), x16[b])
            else:
                for kv_head in range(model.n_kv_heads):
                    self.kv_store.append(("k", layer_index, b, kv_head), k16[b, :, kv_head, :])
                    self.kv_store.append(("v", layer_index, b, kv_head), v16[b, :, kv_head, :])
        attn_flat = attn.reshape(batch, seq_len, model.n_heads * model.head_dim)
        hidden = hidden + attn_flat @ layer["wo"].astype(np.float32)
        hidden = hidden + self._mlp(hidden, layer)
        return hidden

    def _mlp(self, hidden: np.ndarray, layer: dict) -> np.ndarray:
        """ReLU MLP (dense or mixture-of-experts) in FP32 on FP16 inputs."""
        h16 = self._quantize_activation(hidden).astype(np.float32)
        if "experts" in layer:
            return self._moe_mlp(h16, layer).reshape(hidden.shape)
        inner = np.maximum(h16 @ layer["w1"].astype(np.float32), 0.0)
        return inner @ layer["w2"].astype(np.float32)

    def _moe_mlp(self, h16: np.ndarray, layer: dict) -> np.ndarray:
        """Top-k expert routing with softmax-renormalized gates.

        Routing is a function of the FP16-quantized activations, so it is
        identical across execution plans -- MoE models stay lossless under
        ANS, X-cache, and delayed writeback just like dense ones.
        """
        from repro.functional.softmax import reference_softmax

        rows = h16.reshape(-1, self.model.hidden)
        logits = rows @ layer["router"].astype(np.float32)
        top_k = min(self.model.active_experts, self.model.n_experts)
        out = np.zeros_like(rows)
        chosen = np.argsort(logits, axis=1)[:, -top_k:]
        for row_index in range(rows.shape[0]):
            experts = chosen[row_index]
            gates = reference_softmax(logits[row_index, experts]).astype(np.float32)
            for gate, expert_index in zip(gates, experts):
                w1, w2 = layer["experts"][expert_index]
                inner = np.maximum(rows[row_index] @ w1.astype(np.float32), 0.0)
                out[row_index] += gate * (inner @ w2.astype(np.float32))
        return out

    # --- decoding ------------------------------------------------------------------------

    def decode_step(self, x: np.ndarray) -> np.ndarray:
        """One decode step for the whole batch.

        ``x`` is the embedded current token, shape ``(batch, hidden)``.
        Returns the final hidden state of shape ``(batch, hidden)``.
        """
        if self.batch_size is None:
            raise NumericsError("decode_step called before prefill")
        if x.shape != (self.batch_size, self.model.hidden):
            raise NumericsError(
                f"decode_step expects ({self.batch_size}, {self.model.hidden}), got {x.shape}"
            )
        hidden = np.asarray(x, dtype=np.float32)
        position = self.context_len
        for layer_index, layer in enumerate(self.layers):
            hidden = self._decode_layer(layer_index, layer, hidden, position)
        self.context_len += 1
        if self.plan.delayed_writeback:
            self.kv_writeback.end_step()
            self.x_writeback.end_step()
        return hidden

    def _decode_layer(
        self,
        layer_index: int,
        layer: dict,
        hidden: np.ndarray,
        position: int,
    ) -> np.ndarray:
        model = self.model
        batch = hidden.shape[0]
        x16 = self._quantize_activation(hidden)
        q = self._split_heads(self._project(x16, layer["wq"]), model.n_heads)
        k = self._split_heads(self._project(x16, layer["wk"]), model.n_kv_heads)
        v = self._split_heads(self._project(x16, layer["wv"]), model.n_kv_heads)
        pos = np.array([position])
        q = self._rope(q[:, None, :, :], pos)[:, 0, :, :]
        k = self._rope(k[:, None, :, :], pos)[:, 0, :, :]
        k16 = np.asarray(k, dtype=np.float16)
        v16 = np.asarray(v, dtype=np.float16)
        attn = np.empty((batch, model.n_heads, model.head_dim), dtype=np.float32)
        for b in range(batch):
            if self._is_x_managed(b):
                self._stage_or_store_x(layer_index, b, x16[b])
                attn[b] = self._attend_x_cache(layer_index, layer, b, q[b])
            else:
                self._stage_or_store_kv(layer_index, b, k16[b], v16[b])
                attn[b] = self._attend_nsp(layer_index, b, q[b])
        attn_flat = attn.reshape(batch, model.n_heads * model.head_dim)
        hidden = hidden + attn_flat @ layer["wo"].astype(np.float32)
        hidden = hidden + self._mlp(hidden, layer)
        return hidden

    # --- cache-update paths ---------------------------------------------------------------

    def _stage_or_store_kv(
        self, layer_index: int, b: int, k_row: np.ndarray, v_row: np.ndarray
    ) -> None:
        """Commit or stage the new token's K/V for a storage-managed element."""
        for kv_head in range(self.model.n_kv_heads):
            k_key = ("k", layer_index, b, kv_head)
            v_key = ("v", layer_index, b, kv_head)
            if self.plan.delayed_writeback:
                self.kv_writeback.stage(k_key, k_row[kv_head])
                self.kv_writeback.stage(v_key, v_row[kv_head])
            else:
                # Naive approach (Figure 6a): sub-page write on the critical path.
                self.kv_store.append(k_key, k_row[kv_head][None, :], per_row_commit=True)
                self.kv_store.append(v_key, v_row[kv_head][None, :], per_row_commit=True)

    def _stage_or_store_x(self, layer_index: int, b: int, x_row: np.ndarray) -> None:
        """Commit or stage the new token's activation for an X-managed element."""
        key = ("x", layer_index, b)
        if self.plan.delayed_writeback:
            self.x_writeback.stage(key, x_row)
        else:
            self.x_store.append(key, x_row[None, :], per_row_commit=True)

    # --- attention paths --------------------------------------------------------------------

    def _attend_nsp(self, layer_index: int, b: int, q_b: np.ndarray) -> np.ndarray:
        """Attention for a storage-managed batch element (the NSP path)."""
        model = self.model
        out = np.empty((model.n_heads, model.head_dim), dtype=np.float32)
        for kv_head in range(model.n_kv_heads):
            rows = slice(kv_head * model.d_group, (kv_head + 1) * model.d_group)
            q_rows = np.asarray(q_b[rows], dtype=np.float32)
            k_key = ("k", layer_index, b, kv_head)
            v_key = ("v", layer_index, b, kv_head)
            k_stored = self.kv_store.read(k_key) if k_key in self.kv_store else None
            extra_scores = None
            extra_values = None
            if self.plan.delayed_writeback:
                # Host precomputes partial QK^T over the staged entries and
                # ships scalars + new V rows to the device (Figure 6b).
                extra_scores = self.kv_writeback.partial_scores(k_key, q_rows)
                staged_v = self.kv_writeback.staged_rows(v_key)
                extra_values = None if staged_v is None else staged_v
            if k_stored is None:
                # Everything is still staged (early steps with short prefill).
                k_all = self.kv_writeback.staged_rows(k_key)
                v_all = self.kv_writeback.staged_rows(v_key)
                out[rows] = self._run_attention(q_rows, k_all, v_all)
                continue
            v_stored = self.kv_store.read(v_key)
            if self.plan.use_ans:
                out[rows] = blocked_attention(
                    q_rows,
                    k_stored,
                    v_stored,
                    block_size=self.plan.block_size,
                    extra_scores=extra_scores,
                    extra_values=extra_values,
                )
            else:
                k_all, v_all = k_stored, v_stored
                if extra_values is not None:
                    staged_k = self.kv_writeback.staged_rows(k_key)
                    k_all = np.concatenate([k_stored, staged_k], axis=0)
                    v_all = np.concatenate([v_stored, extra_values], axis=0)
                out[rows] = self._run_attention(q_rows, k_all, v_all)
        return out

    def _attend_x_cache(
        self, layer_index: int, layer: dict, b: int, q_b: np.ndarray
    ) -> np.ndarray:
        """Attention for an X-managed batch element (GPU recompute path).

        Reads the stored activations ``X``, regenerates K/V with the layer's
        projections (re-applying RoPE at the original positions), quantizes
        them to the same FP16 the KV path stores, and runs attention on the
        host GPU.
        """
        model = self.model
        key = ("x", layer_index, b)
        parts = []
        if key in self.x_store:
            parts.append(self.x_store.read(key))
        if self.plan.delayed_writeback:
            staged = self.x_writeback.staged_rows(key)
            if staged is not None:
                parts.append(staged)
        x_hist = np.concatenate(parts, axis=0)
        positions = self._positions(x_hist.shape[0])
        k_hist = self._split_heads(self._project(x_hist, layer["wk"]), model.n_kv_heads)
        v_hist = self._split_heads(self._project(x_hist, layer["wv"]), model.n_kv_heads)
        k_hist = self._rope(k_hist, positions)
        k16 = np.asarray(k_hist, dtype=np.float16)
        v16 = np.asarray(v_hist, dtype=np.float16)
        out = np.empty((model.n_heads, model.head_dim), dtype=np.float32)
        for kv_head in range(model.n_kv_heads):
            rows = slice(kv_head * model.d_group, (kv_head + 1) * model.d_group)
            q_rows = np.asarray(q_b[rows], dtype=np.float32)
            out[rows] = self._run_attention(
                q_rows, k16[:, kv_head, :], v16[:, kv_head, :]
            )
        return out

    def _run_attention(
        self, q_rows: np.ndarray, k: np.ndarray | None, v: np.ndarray | None
    ) -> np.ndarray:
        """Dense attention with the plan's kernel (reference or blocked)."""
        if k is None or v is None:
            raise NumericsError("attention requires a non-empty context")
        if self.plan.use_ans:
            return blocked_attention(q_rows, k, v, block_size=self.plan.block_size)
        return np.asarray(
            reference_attention(q_rows, k, v), dtype=np.float32
        )
