"""Softmax kernels: reference, three-pass, and the paper's two-pass version.

The conventional numerically stable softmax needs three passes over the
input (max, sum-of-exponentials, normalize).  For long sequences streamed
from off-chip memory that third-of-traffic matters, so the HILOS accelerator
uses a **two-pass** scheme (Algorithm 1): the first pass computes block-local
maxima and partial sums and folds them into running global statistics via
the online-softmax update; the second pass normalizes element-wise with the
final statistics.

All kernels accept an additive mask and use the paper's masking constant of
``-1e4`` for padding positions (Section 5.4), computing in FP32 regardless
of the input dtype to mirror the hardware's FP32 accumulation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NumericsError

#: The constant the accelerator's MASK module assigns to padding tokens.
MASK_VALUE = -1.0e4

#: Default accelerator block length (tokens per block, Section 4.4).
DEFAULT_BLOCK = 128


def reference_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax in float64 -- the ground-truth oracle."""
    x64 = np.asarray(x, dtype=np.float64)
    shifted = x64 - np.max(x64, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def three_pass_softmax(x: np.ndarray) -> np.ndarray:
    """The conventional three-pass softmax over the last axis (FP32).

    Pass 1 finds the global max, pass 2 accumulates the exponential sum,
    pass 3 normalizes.  This is the baseline the two-pass design replaces;
    it is retained for equivalence testing and traffic comparison.
    """
    x32 = np.asarray(x, dtype=np.float32)
    global_max = np.max(x32, axis=-1, keepdims=True)  # pass 1
    exp_sum = np.sum(np.exp(x32 - global_max), axis=-1, keepdims=True)  # pass 2
    return np.exp(x32 - global_max) / exp_sum  # pass 3


class StreamingSoftmaxState:
    """Running (max, sum) softmax statistics -- Algorithm 1 lines 5-9.

    Vectorized over an arbitrary leading shape: one independent running
    statistic per row.  The **streaming update unit** of the accelerator
    (Figure 7b) implements exactly this recurrence in hardware.
    """

    def __init__(self, rows_shape: tuple[int, ...]) -> None:
        self.running_max = np.full(rows_shape, -np.inf, dtype=np.float32)
        self.running_sum = np.zeros(rows_shape, dtype=np.float32)

    def update(self, block_max: np.ndarray, block_sum: np.ndarray) -> None:
        """Fold one block's local statistics into the running global ones."""
        block_max = np.asarray(block_max, dtype=np.float32)
        block_sum = np.asarray(block_sum, dtype=np.float32)
        newer = block_max > self.running_max
        # Where the block max exceeds the running max, rescale the old sum;
        # otherwise rescale the incoming block sum (Algorithm 1 lines 5-9).
        with np.errstate(invalid="ignore", over="ignore"):
            rescale_old = np.exp(self.running_max - block_max)
            rescale_new = np.exp(block_max - self.running_max)
        rescale_old = np.where(np.isfinite(rescale_old), rescale_old, 0.0)
        rescale_new = np.where(np.isfinite(rescale_new), rescale_new, 0.0)
        self.running_sum = np.where(
            newer,
            self.running_sum * rescale_old + block_sum,
            self.running_sum + block_sum * rescale_new,
        )
        self.running_max = np.maximum(self.running_max, block_max)

    def observe_block(self, block: np.ndarray) -> None:
        """Compute a block's local stats and fold them in (lines 3-4)."""
        block = np.asarray(block, dtype=np.float32)
        block_max = np.max(block, axis=-1)
        block_sum = np.sum(np.exp(block - block_max[..., None]), axis=-1)
        self.update(block_max, block_sum)


def two_pass_softmax(
    x: np.ndarray,
    block_size: int = DEFAULT_BLOCK,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Two-pass blocked softmax over the last axis (Algorithm 1).

    Parameters
    ----------
    x:
        Input of shape ``(..., s)``; processed in blocks of ``block_size``.
    block_size:
        Tokens per hardware block (128 in the shipped accelerator).
    mask:
        Optional boolean array broadcastable to ``x``; ``False`` positions
        receive :data:`MASK_VALUE` before both passes, as the hardware MASK
        modules do.
    """
    if block_size <= 0:
        raise NumericsError(f"block_size must be positive, got {block_size}")
    x32 = np.asarray(x, dtype=np.float32)
    if mask is not None:
        x32 = np.where(mask, x32, np.float32(MASK_VALUE))
    seq_len = x32.shape[-1]
    state = StreamingSoftmaxState(x32.shape[:-1])
    # First pass: stream blocks through the statistics aggregation unit.
    for start in range(0, seq_len, block_size):
        state.observe_block(x32[..., start : start + block_size])
    # Second pass: element-wise normalization (Figure 7c).
    out = np.empty_like(x32)
    denom = state.running_sum[..., None]
    gmax = state.running_max[..., None]
    for start in range(0, seq_len, block_size):
        stop = min(start + block_size, seq_len)
        out[..., start:stop] = np.exp(x32[..., start:stop] - gmax) / denom
    return out
