"""Functional delayed KV cache writeback (Section 4.3).

Instead of committing each newly generated KV vector to storage (a sub-page
write on the critical path), the writeback manager stages entries in host
memory.  Until they are spilled, the host CPU precomputes the partial
``QK^T`` dot products against the staged keys and ships only those scalars
(plus the staged values) to the accelerator, which folds them into the
softmax stream -- see :func:`repro.functional.blocked.blocked_attention`'s
``extra_scores``/``extra_values`` parameters.

Every ``spill_interval`` decode steps the staged entries are flushed to the
:class:`~repro.functional.kvstore.PagedStore` as one contiguous page-aligned
write, which is what removes the write amplification.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.errors import SchedulingError
from repro.functional.kvstore import PagedStore


class DelayedWritebackBuffer:
    """Host-memory staging of new KV (or X) rows with periodic spills."""

    def __init__(self, store: PagedStore, spill_interval: int) -> None:
        if spill_interval < 1:
            raise SchedulingError(f"spill interval must be >= 1, got {spill_interval}")
        self.store = store
        self.spill_interval = spill_interval
        self._staged: dict[Hashable, list[np.ndarray]] = {}
        self._steps_since_spill = 0
        self.total_spills = 0

    # --- staging -----------------------------------------------------------------

    def stage(self, key: Hashable, row: np.ndarray) -> None:
        """Buffer one new row (a ``1 x d`` KV vector) in host memory."""
        row = np.asarray(row)
        if row.ndim != 1:
            raise SchedulingError(f"staged rows must be 1-D, got shape {row.shape}")
        self._staged.setdefault(key, []).append(row.copy())

    def staged_rows(self, key: Hashable) -> np.ndarray | None:
        """The staged rows for ``key`` as an ``(n, d)`` array, or ``None``."""
        rows = self._staged.get(key)
        if not rows:
            return None
        return np.stack(rows, axis=0)

    def staged_count(self, key: Hashable) -> int:
        """Number of rows currently staged under ``key``."""
        return len(self._staged.get(key, ()))

    def staged_bytes(self) -> int:
        """Total bytes currently held in the host staging buffers."""
        return sum(
            sum(row.nbytes for row in rows) for rows in self._staged.values()
        )

    # --- host-side partial QK^T (step 2 of Figure 6b) -------------------------------

    def partial_scores(self, key: Hashable, q: np.ndarray) -> np.ndarray | None:
        """Raw dot products of ``q`` (``(n_q, d)``) against staged keys.

        Returns ``(n_q, n_staged)`` FP32 scores (unscaled -- the accelerator
        applies the ``1/sqrt(d)`` factor in its score path), or ``None`` if
        nothing is staged.
        """
        staged = self.staged_rows(key)
        if staged is None:
            return None
        q32 = np.asarray(q, dtype=np.float32)
        return q32 @ np.asarray(staged, dtype=np.float32).T

    # --- spilling --------------------------------------------------------------------

    def end_step(self) -> bool:
        """Advance the step counter; spill if the interval elapsed.

        Returns ``True`` when a spill happened this step.
        """
        self._steps_since_spill += 1
        if self._steps_since_spill >= self.spill_interval:
            self.spill_all()
            return True
        return False

    def spill_all(self) -> None:
        """Flush every staged run to storage as contiguous page-sized writes."""
        for key, rows in self._staged.items():
            if rows:
                self.store.append(key, np.stack(rows, axis=0), per_row_commit=False)
        self._staged.clear()
        self._steps_since_spill = 0
        self.total_spills += 1
