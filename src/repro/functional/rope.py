"""Rotary position embeddings (RoPE).

Needed by the cooperative X-cache recompute path: models such as Qwen2.5 and
Mixtral apply RoPE to queries and keys *after* the QKV projection, so keys
regenerated from the cached pre-projection activations ``X`` must be
re-rotated with their original positions.  The paper notes the recompute
overhead is negligible thanks to position caching (Section 6.4); here we
care about the *correctness* property, verified against cached keys in the
functional engine.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NumericsError


def rope_frequencies(head_dim: int, base: float = 10000.0) -> np.ndarray:
    """Inverse frequencies for each rotary dimension pair."""
    if head_dim % 2 != 0:
        raise NumericsError(f"RoPE requires an even head dim, got {head_dim}")
    exponent = np.arange(0, head_dim, 2, dtype=np.float64) / head_dim
    return base**-exponent


def apply_rope(
    x: np.ndarray,
    positions: np.ndarray,
    base: float = 10000.0,
) -> np.ndarray:
    """Rotate vectors by their position-dependent angles.

    Parameters
    ----------
    x:
        Array of shape ``(..., s, d)`` with ``d`` even; rotated pairwise over
        the last axis.
    positions:
        Integer positions of shape ``(s,)`` (absolute indices into the
        context, so recomputed keys get the same rotation they originally
        received).
    """
    x = np.asarray(x, dtype=np.float64)
    positions = np.asarray(positions, dtype=np.float64)
    if x.shape[-2] != positions.shape[0]:
        raise NumericsError(
            f"positions length {positions.shape[0]} does not match "
            f"sequence length {x.shape[-2]}"
        )
    freqs = rope_frequencies(x.shape[-1], base=base)
    angles = positions[:, None] * freqs[None, :]  # (s, d/2)
    cos = np.cos(angles)
    sin = np.sin(angles)
    x_even = x[..., 0::2]
    x_odd = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x_even * cos - x_odd * sin
    out[..., 1::2] = x_even * sin + x_odd * cos
    return out
