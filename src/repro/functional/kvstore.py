"""Page-layout cache stores with write-amplification accounting.

The paper's Section 4.3 observation is layout-driven: prefill writes the KV
cache **row-wise** (``b x h x s x d``) in large contiguous runs that exceed
the SSD's 4 KiB page, while decoding appends tiny ``1 x d`` vectors (~256
bytes per head) whose naive per-entry commits are amplified to a full page
each.  :class:`PagedStore` keeps that accounting (logical vs physical bytes)
alongside the actual tensor data, so the same object backs both the
numerical equivalence tests and the endurance analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.errors import NumericsError
from repro.units import KiB, ceil_div

#: Default NAND page size (Section 4.3).
PAGE_BYTES = 4 * KiB


@dataclass
class StoreCounters:
    """Byte-level accounting of a store's I/O history."""

    logical_bytes_written: float = 0.0
    physical_bytes_written: float = 0.0
    logical_bytes_read: float = 0.0
    write_ops: int = 0
    read_ops: int = 0

    @property
    def write_amplification(self) -> float:
        """Physical over logical write bytes (1.0 when nothing written)."""
        if self.logical_bytes_written <= 0:
            return 1.0
        return self.physical_bytes_written / self.logical_bytes_written


@dataclass
class _Region:
    """Rows stored under one key (one ``(layer, batch, head)`` row-run)."""

    chunks: list[np.ndarray] = field(default_factory=list)

    def materialize(self) -> np.ndarray:
        if not self.chunks:
            raise NumericsError("read from an empty store region")
        if len(self.chunks) > 1:
            merged = np.concatenate(self.chunks, axis=0)
            self.chunks = [merged]
        return self.chunks[0]


class PagedStore:
    """A page-granular tensor store (the functional stand-in for flash).

    Keys are arbitrary hashables -- the engine uses ``(layer, batch, head,
    tensor_name)`` -- and each key holds a run of rows appended along axis 0
    (the sequence dimension), which is exactly the paper's row-wise layout.
    """

    def __init__(self, page_bytes: int = PAGE_BYTES, name: str = "store") -> None:
        if page_bytes <= 0:
            raise NumericsError("page size must be positive")
        self.page_bytes = page_bytes
        self.name = name
        self.counters = StoreCounters()
        self._regions: dict[Hashable, _Region] = {}

    # --- writes ------------------------------------------------------------------

    def append(
        self,
        key: Hashable,
        rows: np.ndarray,
        per_row_commit: bool = False,
    ) -> None:
        """Append ``rows`` (shape ``(n, ...)``) to the run stored under ``key``.

        ``per_row_commit=True`` models the naive writeback: every row is a
        separate sub-page write that programs a full page.  ``False`` models
        one contiguous write (prefill rows or a delayed-writeback spill),
        which rounds up to the page size once.
        """
        rows = np.asarray(rows)
        if rows.ndim < 1 or rows.shape[0] == 0:
            raise NumericsError("append requires at least one row")
        row_bytes = rows.nbytes / rows.shape[0]
        self.counters.logical_bytes_written += rows.nbytes
        if per_row_commit:
            per_op = ceil_div(int(row_bytes), self.page_bytes) * self.page_bytes
            self.counters.physical_bytes_written += per_op * rows.shape[0]
            self.counters.write_ops += rows.shape[0]
        else:
            physical = ceil_div(int(rows.nbytes), self.page_bytes) * self.page_bytes
            self.counters.physical_bytes_written += physical
            self.counters.write_ops += 1
        self._regions.setdefault(key, _Region()).chunks.append(rows.copy())

    # --- reads ----------------------------------------------------------------------

    def read(self, key: Hashable) -> np.ndarray:
        """Read the full row-run stored under ``key`` (sequential flash read)."""
        if key not in self._regions:
            raise NumericsError(f"{self.name}: no data stored under key {key!r}")
        data = self._regions[key].materialize()
        self.counters.logical_bytes_read += data.nbytes
        self.counters.read_ops += 1
        return data

    def rows_stored(self, key: Hashable) -> int:
        """Number of rows currently stored under ``key`` (0 if absent)."""
        region = self._regions.get(key)
        if region is None:
            return 0
        return sum(chunk.shape[0] for chunk in region.chunks)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._regions

    @property
    def write_amplification(self) -> float:
        """Convenience mirror of the counter's write amplification."""
        return self.counters.write_amplification
