"""Lossy top-k sparse attention (the InstAttention-style comparator).

InstAttention meets in-storage resource constraints by retrieving only a
compressed fraction of the KV cache (default 1/8), trading accuracy for
bandwidth.  The paper's Figure 18(c) shows this costs 3.5-5.7 F1 points on
long-context tasks, whereas the HILOS accelerator is lossless.  This module
implements the sparse baseline so the accuracy experiment can reproduce that
comparison on synthetic retrieval tasks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NumericsError
from repro.functional.softmax import reference_softmax


def topk_sparse_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    compression_ratio: float = 1.0 / 8.0,
    scale: float | None = None,
    always_keep_recent: int = 0,
) -> np.ndarray:
    """Attention restricted to the top-scoring fraction of keys.

    Parameters
    ----------
    q:
        ``(n_q, d)`` queries.
    k, v:
        ``(s, d)`` caches.
    compression_ratio:
        Fraction of keys retrieved per query (InstAttention default 1/8).
    always_keep_recent:
        Number of most-recent tokens always included (sliding-window
        component common to sparse retrieval schemes).

    Returns
    -------
    ``(n_q, d)`` float64 outputs computed over the selected keys only.
    """
    if not 0.0 < compression_ratio <= 1.0:
        raise NumericsError(f"compression_ratio must be in (0, 1], got {compression_ratio}")
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    seq_len, head_dim = k.shape
    if scale is None:
        scale = 1.0 / np.sqrt(head_dim)
    keep = max(1, int(round(seq_len * compression_ratio)))
    scores = (q @ k.T) * scale  # (n_q, s)
    out = np.empty((q.shape[0], head_dim), dtype=np.float64)
    for row in range(q.shape[0]):
        row_scores = scores[row]
        selected = np.argpartition(row_scores, -keep)[-keep:]
        if always_keep_recent:
            recent = np.arange(max(0, seq_len - always_keep_recent), seq_len)
            selected = np.union1d(selected, recent)
        probs = reference_softmax(row_scores[selected])
        out[row] = probs @ v[selected]
    return out


def approx_topk_sparse_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    compression_ratio: float = 1.0 / 8.0,
    index_dim_ratio: float = 0.3125,
    scale: float | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Sparse attention with an *approximate* (lossy-compressed) retrieval index.

    In-storage sparse schemes cannot afford full-precision scoring of every
    key; InstAttention-style designs rank keys with a compressed index and
    fetch only the winning fraction.  We model the index as a fixed random
    orthonormal projection to ``index_dim_ratio * d`` dimensions: selection
    scores are computed in the compressed space, then exact attention runs
    over the selected ``compression_ratio`` fraction.  Needles whose
    compressed scores are reordered below the cut are lost -- the mechanism
    behind the LongBench F1 drop in Figure 18(c).
    """
    if not 0.0 < compression_ratio <= 1.0:
        raise NumericsError(f"compression_ratio must be in (0, 1], got {compression_ratio}")
    if not 0.0 < index_dim_ratio <= 1.0:
        raise NumericsError(f"index_dim_ratio must be in (0, 1], got {index_dim_ratio}")
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    seq_len, head_dim = k.shape
    if scale is None:
        scale = 1.0 / np.sqrt(head_dim)
    index_dims = max(1, int(round(head_dim * index_dim_ratio)))
    rng = np.random.default_rng(seed)
    projection, _ = np.linalg.qr(rng.standard_normal((head_dim, index_dims)))
    approx_scores = (q @ projection) @ (k @ projection).T
    keep = max(1, int(round(seq_len * compression_ratio)))
    out = np.empty((q.shape[0], head_dim), dtype=np.float64)
    for row in range(q.shape[0]):
        selected = np.argpartition(approx_scores[row], -keep)[-keep:]
        exact = (q[row : row + 1] @ k[selected].T) * scale
        probs = reference_softmax(exact[0])
        out[row] = probs @ v[selected]
    return out


def retrieval_traffic_fraction(compression_ratio: float) -> float:
    """Fraction of KV bytes a sparse scheme moves relative to exact attention.

    Used by the discussion-section comparisons: bandwidth saved is the flip
    side of the accuracy lost in Figure 18(c).
    """
    if not 0.0 < compression_ratio <= 1.0:
        raise NumericsError(f"compression_ratio must be in (0, 1], got {compression_ratio}")
    return compression_ratio
