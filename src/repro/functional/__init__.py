"""Functional (numerical) kernels and the lossless end-to-end decode engine.

This package implements the math the HILOS accelerator performs, in NumPy:

* :mod:`repro.functional.softmax` -- the reference three-pass softmax and the
  paper's two-pass streaming softmax (Algorithm 1).
* :mod:`repro.functional.attention` -- reference MHA/GQA attention.
* :mod:`repro.functional.blocked` -- block-tiled attention with online
  transpose, emulating the accelerator dataflow of Figure 7.
* :mod:`repro.functional.sparse` -- lossy top-k sparse attention
  (InstAttention-style baseline for Figure 18c).
* :mod:`repro.functional.rope` -- rotary position embeddings, exercised by
  the X-cache recompute path.
* :mod:`repro.functional.kvstore` -- page-layout KV/X cache stores with
  write-amplification accounting.
* :mod:`repro.functional.writeback` -- the functional delayed-writeback
  buffer with host-side partial QK^T (Section 4.3).
* :mod:`repro.functional.engine` -- a tiny end-to-end decoder that runs each
  execution plan (baseline / ANS / +X-cache / +writeback) and produces
  numerically equivalent outputs, demonstrating losslessness.
"""

from repro.functional.attention import (
    grouped_query_attention,
    multihead_decode_attention,
    reference_attention,
)
from repro.functional.blocked import blocked_attention, transpose_in_blocks
from repro.functional.engine import ExecutionPlan, FunctionalDecoder
from repro.functional.rope import apply_rope
from repro.functional.softmax import (
    StreamingSoftmaxState,
    reference_softmax,
    three_pass_softmax,
    two_pass_softmax,
)
from repro.functional.sparse import topk_sparse_attention

__all__ = [
    "reference_attention",
    "grouped_query_attention",
    "multihead_decode_attention",
    "blocked_attention",
    "transpose_in_blocks",
    "ExecutionPlan",
    "FunctionalDecoder",
    "apply_rope",
    "StreamingSoftmaxState",
    "reference_softmax",
    "three_pass_softmax",
    "two_pass_softmax",
    "topk_sparse_attention",
]
