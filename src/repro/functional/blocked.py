"""Block-tiled attention emulating the HILOS accelerator dataflow (Fig. 7).

The hardware processes the KV cache in blocks of 128 tokens through four
pipelined units: the **query-key product unit** (with an on-chip 128x128
online transpose of each key block), the **softmax statistics aggregation
unit** (first pass of Algorithm 1), the **softmax normalization unit**
(second pass), and the **score-value product unit**.  This module executes
the same computation per-block in NumPy, including:

* FP16 storage with FP32 intermediate accumulation (Section 5.4);
* masking with the hardware constant ``-1e4``;
* injected *precomputed scalars from the host* -- the partial ``QK^T``
  scores of buffered-but-unspilled KV entries under delayed writeback
  (Section 4.3) -- which join the softmax stream exactly as the hardware
  MASK/score path does;
* native GQA: ``d_group`` query rows share each key/value block read.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NumericsError
from repro.functional.softmax import DEFAULT_BLOCK, MASK_VALUE, StreamingSoftmaxState


def transpose_in_blocks(matrix: np.ndarray, block: int = DEFAULT_BLOCK) -> np.ndarray:
    """Transpose via 128x128 local block transposes (the online-transpose unit).

    The hardware loads a square block of the row-major key matrix into K-Buf,
    transposes it locally into K^T-Buf, and streams it to the MAC lanes; a
    global transpose is never materialized (Section 4.4).  Functionally the
    result equals ``matrix.T``; doing it block-wise here keeps the emulation
    structurally faithful and testable.
    """
    rows, cols = matrix.shape
    out = np.empty((cols, rows), dtype=matrix.dtype)
    for r in range(0, rows, block):
        for c in range(0, cols, block):
            tile = matrix[r : r + block, c : c + block]
            out[c : c + block, r : r + block] = tile.T
    return out


def blocked_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    block_size: int = DEFAULT_BLOCK,
    scale: float | None = None,
    valid_len: int | None = None,
    extra_scores: np.ndarray | None = None,
    extra_values: np.ndarray | None = None,
    quantize_storage: bool = True,
) -> np.ndarray:
    """Accelerator-faithful attention for one KV head.

    Parameters
    ----------
    q:
        ``(n_q, d)`` query rows; ``n_q = d_group`` for GQA (the K/V blocks
        are broadcast to all query rows, mirroring the hardware).
    k, v:
        ``(s, d)`` stored cache (FP16 on flash; quantized here when
        ``quantize_storage``).
    block_size:
        Tokens per hardware block (128 on the shipped design).
    valid_len:
        Number of valid tokens; positions beyond it (zero padding for AXI
        burst alignment, Section 5.4) are masked with ``-1e4``.
    extra_scores:
        ``(n_q, n_new)`` raw (unscaled) dot products ``q . k_new`` computed
        by the host CPU for delayed-writeback entries; scaled and appended
        to the softmax stream here.
    extra_values:
        ``(n_new, d)`` the corresponding new value vectors shipped from the
        host buffer.

    Returns
    -------
    ``(n_q, d)`` float32 attention outputs.
    """
    q32 = np.asarray(q, dtype=np.float32)
    if q32.ndim != 2:
        raise NumericsError("blocked_attention expects q of shape (n_q, d)")
    if quantize_storage:
        k = np.asarray(k, dtype=np.float16)
        v = np.asarray(v, dtype=np.float16)
    k32 = np.asarray(k, dtype=np.float32)
    v32 = np.asarray(v, dtype=np.float32)
    seq_len, head_dim = k32.shape
    if q32.shape[1] != head_dim:
        raise NumericsError(f"q dim {q32.shape[1]} != k dim {head_dim}")
    if (extra_scores is None) != (extra_values is None):
        raise NumericsError("extra_scores and extra_values must be given together")
    if scale is None:
        scale = 1.0 / float(np.sqrt(head_dim))
    if valid_len is None:
        valid_len = seq_len
    if not 0 <= valid_len <= seq_len:
        raise NumericsError(f"valid_len {valid_len} outside [0, {seq_len}]")

    n_q = q32.shape[0]
    n_blocks = -(-seq_len // block_size) if seq_len else 0

    # ---- pass 1: QK^T per block + streaming statistics --------------------------
    # score_buffer emulates the QK^T staging in FPGA DRAM between passes.
    score_buffer: list[np.ndarray] = []
    state = StreamingSoftmaxState((n_q,))
    for b in range(n_blocks):
        start = b * block_size
        stop = min(start + block_size, seq_len)
        k_block = k32[start:stop]
        # Online transpose: local block transpose instead of a global K^T.
        kt_block = transpose_in_blocks(k_block, block=block_size)
        scores = (q32 @ kt_block) * np.float32(scale)  # (n_q, block)
        # MASK module: padding positions forced to -1e4 before statistics.
        if stop > valid_len:
            pad_from = max(0, valid_len - start)
            scores[:, pad_from:] = np.float32(MASK_VALUE)
        score_buffer.append(scores)
        state.observe_block(scores)
    if extra_scores is not None:
        host_scores = np.asarray(extra_scores, dtype=np.float32) * np.float32(scale)
        if host_scores.shape[0] != n_q:
            raise NumericsError(
                f"extra_scores rows {host_scores.shape[0]} != n_q {n_q}"
            )
        score_buffer.append(host_scores)
        state.observe_block(host_scores)

    if not score_buffer:
        raise NumericsError("attention over an empty context")

    # ---- pass 2: normalize per block and accumulate score.V ----------------------
    gmax = state.running_max[:, None]
    denom = state.running_sum[:, None]
    out = np.zeros((n_q, head_dim), dtype=np.float32)
    for b in range(n_blocks):
        start = b * block_size
        stop = min(start + block_size, seq_len)
        probs = np.exp(score_buffer[b] - gmax) / denom
        out += probs @ v32[start:stop]
    if extra_values is not None:
        probs = np.exp(score_buffer[-1] - gmax) / denom
        extra_v32 = np.asarray(extra_values, dtype=np.float32)
        if extra_v32.shape[0] != probs.shape[1]:
            raise NumericsError(
                f"extra_values rows {extra_v32.shape[0]} != "
                f"extra score columns {probs.shape[1]}"
            )
        out += probs @ extra_v32
    return out


def blocked_multihead_decode(
    q: np.ndarray,
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    block_size: int = DEFAULT_BLOCK,
) -> np.ndarray:
    """Decode-step attention over all batch elements and heads, blocked.

    Shapes match :func:`repro.functional.attention.multihead_decode_attention`:
    ``q (batch, n_heads, d)``, caches ``(batch, n_kv_heads, s, d)``; returns
    float32 ``(batch, n_heads, d)``.
    """
    batch, n_heads, head_dim = q.shape
    n_kv_heads = k_cache.shape[1]
    if n_heads % n_kv_heads != 0:
        raise NumericsError("n_heads must be a multiple of n_kv_heads")
    d_group = n_heads // n_kv_heads
    out = np.empty((batch, n_heads, head_dim), dtype=np.float32)
    for b in range(batch):
        for kv in range(n_kv_heads):
            rows = slice(kv * d_group, (kv + 1) * d_group)
            out[b, rows, :] = blocked_attention(
                q[b, rows, :], k_cache[b, kv], v_cache[b, kv], block_size=block_size
            )
    return out
