"""simlint core: findings, inline suppressions, and the lint driver.

A :class:`Finding` is one rule violation at one source location.  Rules
(see :mod:`repro.analysis.simlint.rules`) are pure functions from a parsed
:class:`SourceFile` to findings; this module owns everything around them:
discovering files, parsing, applying ``# simlint: disable=...`` inline
suppressions and the config's per-file ignores, and sorting the result.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.simlint.config import SimlintConfig

#: Inline suppression syntax.  ``# simlint: disable`` silences every rule
#: on its line; ``# simlint: disable=SIM001,SIM005`` silences those codes.
#: The comment must sit on the physical line the finding is reported at
#: (the statement's first line for multi-line statements).
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?:=(?P<codes>[A-Za-z0-9_,\s]+))?", re.IGNORECASE
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """The classic ``path:line:col: CODE message`` diagnostic line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class SourceFile:
    """A parsed module plus its per-line suppression table."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.tree = ast.parse(text, filename=path)
        #: line number -> frozenset of suppressed codes (empty set = all).
        self._suppressions: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                self._suppressions[lineno] = frozenset()
            else:
                self._suppressions[lineno] = frozenset(
                    code.strip().upper() for code in codes.split(",") if code.strip()
                )

    def suppressed(self, line: int, code: str) -> bool:
        """Whether ``code`` is silenced on ``line`` by an inline comment."""
        codes = self._suppressions.get(line)
        if codes is None:
            return False
        return not codes or code in codes


def iter_python_files(paths: Iterable[str], config: SimlintConfig) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths``, honouring config excludes.

    Directories are walked recursively in sorted order so output (and exit
    status ties) are deterministic across filesystems.
    """
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py" and not config.excluded(str(root)):
                yield root
        elif root.is_dir():
            for path in sorted(root.rglob("*.py")):
                if not config.excluded(str(path)):
                    yield path


def lint_file(path: str, text: str, config: SimlintConfig) -> list[Finding]:
    """Lint one module's source; returns surviving findings, sorted.

    Syntax errors are reported as a pseudo-finding (code ``SIM000``) rather
    than raised: a linter that crashes on the file it should flag is a
    linter with a blind spot.
    """
    from repro.analysis.simlint.rules import RULES

    try:
        source = SourceFile(path, text)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="SIM000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    ignored = config.ignored_codes(path)
    findings: list[Finding] = []
    for rule in RULES.values():
        if not config.selected(rule.code) or rule.code in ignored:
            continue
        for finding in rule.check(source, config):
            if not source.suppressed(finding.line, finding.code):
                findings.append(finding)
    return sorted(findings)


def lint_paths(paths: Iterable[str], config: SimlintConfig) -> list[Finding]:
    """Lint every Python file under ``paths``; the CLI's workhorse."""
    findings: list[Finding] = []
    for path in iter_python_files(paths, config):
        findings.extend(lint_file(str(path), path.read_text(), config))
    return sorted(findings)
