"""simlint: DES-aware static analysis for the repro simulation stack.

Run it as ``python -m repro.analysis.simlint src tests``.  Rules live in
:mod:`repro.analysis.simlint.rules`; configuration comes from the
``[tool.simlint]`` pyproject table plus ``# simlint: disable=...`` inline
suppressions.  The runtime counterpart is
:class:`repro.analysis.sanitizer.SimSanitizer`.
"""

from repro.analysis.simlint.cli import main
from repro.analysis.simlint.config import SimlintConfig, load_config
from repro.analysis.simlint.core import Finding, lint_file, lint_paths
from repro.analysis.simlint.rules import RULES, Rule

__all__ = [
    "Finding",
    "RULES",
    "Rule",
    "SimlintConfig",
    "lint_file",
    "lint_paths",
    "load_config",
    "main",
]
