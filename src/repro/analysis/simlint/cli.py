"""The ``python -m repro.analysis.simlint`` command-line front end.

Exit status: 0 when every linted file is clean, 1 when findings were
reported, 2 on usage or configuration errors (mirroring grep/flake8
conventions so CI can distinguish "dirty" from "broken").
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.simlint.config import SimlintConfig, load_config
from repro.analysis.simlint.core import lint_paths
from repro.errors import ConfigurationError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.simlint",
        description="DES-aware static analysis for the repro simulation stack.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src tests)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.simlint] from "
        "(default: nearest pyproject.toml above the working directory)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject configuration and run with built-in defaults",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (overrides config select)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its one-line summary and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print the full documentation for one rule code and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    from repro.analysis.simlint.rules import RULES

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.code} ({rule.name}): {rule.summary}")
        return 0
    if args.explain:
        code = args.explain.upper()
        rule = RULES.get(code)
        if rule is None:
            print(
                f"unknown rule {code!r} (known: {', '.join(RULES)})",
                file=sys.stderr,
            )
            return 2
        print(f"{rule.code} ({rule.name}): {rule.summary}")
        print()
        print(rule.doc)
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths to lint", file=sys.stderr)
        return 2

    try:
        if args.no_config:
            config = SimlintConfig()
        else:
            config = load_config(args.config)
        if args.select:
            selected = tuple(
                code.strip().upper() for code in args.select.split(",") if code.strip()
            )
            unknown = sorted(set(selected) - set(RULES))
            if unknown:
                raise ConfigurationError(
                    f"unknown rule code(s) in --select: {', '.join(unknown)}"
                )
            config = SimlintConfig(
                select=selected,
                exclude=config.exclude,
                per_file_ignores=config.per_file_ignores,
                interface_attributes=config.interface_attributes,
                acquire_methods=config.acquire_methods,
                release_methods=config.release_methods,
            )
        findings = lint_paths(args.paths, config)
    except ConfigurationError as exc:
        print(f"simlint: {exc}", file=sys.stderr)
        return 2

    for finding in findings:
        print(finding.format())
    if findings:
        print(f"simlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0
