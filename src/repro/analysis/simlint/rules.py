"""The DES-aware rules: SIM001-SIM006.

Every rule is motivated by a bug class this repo has actually shipped and
fixed (see ``CHANGES.md`` and the "Static analysis & sanitizer" section of
``DESIGN.md``).  Rules are deliberately syntactic -- no type inference --
and err toward silence on constructs they cannot classify: a lint pass
that cries wolf gets disabled, and the runtime sanitizer backstops what
static analysis cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.analysis.simlint import cfg
from repro.analysis.simlint.config import SimlintConfig
from repro.analysis.simlint.core import Finding, SourceFile


@dataclass(frozen=True)
class Rule:
    """One lint rule: a code, human docs, and a checker function."""

    code: str
    name: str
    summary: str
    doc: str
    check: Callable[[SourceFile, SimlintConfig], list[Finding]]


def _finding(source: SourceFile, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        path=source.path,
        line=node.lineno,
        col=node.col_offset,
        code=code,
        message=message,
    )


def _own_nodes(func: ast.AST, reachable_only: bool = False) -> Iterator[ast.AST]:
    """Walk a function's nodes without descending into nested def/class.

    With ``reachable_only``, ``if False:`` / ``if 0:`` bodies are skipped --
    the standard idiom for forcing a function to be a generator
    (``if False: yield``) must not trip yield-value rules.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        if (
            reachable_only
            and isinstance(node, ast.If)
            and isinstance(node.test, ast.Constant)
            and not node.test.value
        ):
            stack.append(node.test)
            stack.extend(node.orelse)
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(func: ast.FunctionDef) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in _own_nodes(func)
    )


def _functions(tree: ast.Module) -> Iterator[tuple[ast.FunctionDef, ast.ClassDef | None]]:
    """Every function definition, paired with its enclosing class (if any)."""

    def visit(node: ast.AST, enclosing: ast.ClassDef | None) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, enclosing
                yield from visit(child, None)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            else:
                yield from visit(child, enclosing)

    yield from visit(tree, None)


def _call_name(func: ast.expr) -> str | None:
    """The trailing identifier of a call target (``a.b.c(...)`` -> ``"c"``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# --- SIM001: processes must yield events -----------------------------------------

#: Yield values that cannot possibly be Event instances.
_NON_EVENT_YIELDS = (
    ast.Constant,
    ast.JoinedStr,
    ast.List,
    ast.Tuple,
    ast.Set,
    ast.Dict,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.BinOp,
    ast.UnaryOp,
    ast.BoolOp,
    ast.Compare,
    ast.Lambda,
)


def _process_generator_names(tree: ast.Module) -> set[str]:
    """Names of generators registered as sim processes within this module."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        target = _call_name(node.func)
        if target not in {"process", "Process"}:
            continue
        for arg in node.args:
            if isinstance(arg, ast.Call):
                inner = _call_name(arg.func)
                if inner:
                    names.add(inner)
            else:
                inner = _call_name(arg)
                if inner:
                    names.add(inner)
    return names


def check_sim001(source: SourceFile, config: SimlintConfig) -> list[Finding]:
    registered = _process_generator_names(source.tree)
    findings = []
    for func, _ in _functions(source.tree):
        if not _is_generator(func):
            continue
        if not (func.name.endswith("_process") or func.name in registered):
            continue
        for node in _own_nodes(func, reachable_only=True):
            if not isinstance(node, ast.Yield):
                continue
            value = node.value
            if value is None:
                findings.append(
                    _finding(
                        source,
                        node,
                        "SIM001",
                        f"sim process {func.name!r} has a bare yield; processes "
                        "must yield Event instances (yielding anything else "
                        "deadlocks or fails the process)",
                    )
                )
            elif isinstance(value, _NON_EVENT_YIELDS):
                findings.append(
                    _finding(
                        source,
                        node,
                        "SIM001",
                        f"sim process {func.name!r} yields a "
                        f"{type(value).__name__}; processes must yield Event "
                        "instances (yielding anything else deadlocks or fails "
                        "the process)",
                    )
                )
    return findings


# --- SIM002: determinism hazards --------------------------------------------------

_WALL_CLOCK_FUNCS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}
_DATETIME_FUNCS = {"now", "utcnow", "today"}


def _is_set_producing(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


def check_sim002(source: SourceFile, config: SimlintConfig) -> list[Finding]:
    findings = []
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            value = node.func.value
            if (
                isinstance(value, ast.Name)
                and value.id == "time"
                and attr in _WALL_CLOCK_FUNCS
            ):
                findings.append(
                    _finding(
                        source,
                        node,
                        "SIM002",
                        f"wall-clock call time.{attr}() in simulation code; "
                        "simulated time must come from the Simulator clock "
                        "(allowlist host-side timing via per-file-ignores)",
                    )
                )
            elif attr in _DATETIME_FUNCS and (
                (isinstance(value, ast.Name) and value.id in {"datetime", "date"})
                or (
                    isinstance(value, ast.Attribute)
                    and value.attr in {"datetime", "date"}
                )
            ):
                findings.append(
                    _finding(
                        source,
                        node,
                        "SIM002",
                        f"wall-clock call datetime {attr}() in simulation code; "
                        "results depend on the host clock, not the seed",
                    )
                )
            elif (
                isinstance(value, ast.Name)
                and value.id == "random"
                and attr != "Random"
            ):
                findings.append(
                    _finding(
                        source,
                        node,
                        "SIM002",
                        f"module-level random.{attr}() shares unseeded global "
                        "state; draw from a private random.Random(seed) (or "
                        "numpy default_rng(seed)) instead",
                    )
                )
        iterables: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iterables.extend(gen.iter for gen in node.generators)
        for iterable in iterables:
            if _is_set_producing(iterable):
                findings.append(
                    _finding(
                        source,
                        iterable,
                        "SIM002",
                        "iteration over a set is hash-order-nondeterministic; "
                        "sort it (or keep an ordered container) before work "
                        "derived from it feeds event scheduling",
                    )
                )
    return findings


# --- SIM003: events constructed but never observed --------------------------------

_EVENT_FACTORY_METHODS = {"event", "timeout", "all_of"}
_EVENT_CLASS_NAMES = {"Event", "Timeout", "AllOf", "Barrier"}


def _is_event_ctor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Attribute) and node.func.attr in _EVENT_FACTORY_METHODS:
        return True
    name = _call_name(node.func)
    return name in _EVENT_CLASS_NAMES


def _scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    yield tree, tree.body
    for func, _ in _functions(tree):
        yield func, func.body


def check_sim003(source: SourceFile, config: SimlintConfig) -> list[Finding]:
    findings = []
    for scope, _ in _scopes(source.tree):
        loaded = {
            node.id
            for node in ast.walk(scope)  # includes nested defs: closures count
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
        }
        for node in _own_nodes(scope):
            if isinstance(node, ast.Expr) and _is_event_ctor(node.value):
                findings.append(
                    _finding(
                        source,
                        node,
                        "SIM003",
                        "Event constructed and immediately discarded; "
                        "nothing can ever observe it triggering "
                        "(lost wakeup)",
                    )
                )
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_event_ctor(node.value)
                and node.targets[0].id not in loaded
            ):
                findings.append(
                    _finding(
                        source,
                        node,
                        "SIM003",
                        f"Event bound to {node.targets[0].id!r} is never "
                        "yielded, returned, or given a callback "
                        "(lost wakeup)",
                    )
                )
    return findings


# --- SIM004: acquire without release on every exit path ---------------------------


def _has_direct_release(func: ast.AST, release_methods: tuple[str, ...]) -> bool:
    return any(
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in release_methods
        for node in _own_nodes(func)
    )


def check_sim004(source: SourceFile, config: SimlintConfig) -> list[Finding]:
    acquire = set(config.acquire_methods)
    release = set(config.release_methods)

    def is_acquire(call: ast.Call) -> bool:
        return isinstance(call.func, ast.Attribute) and call.func.attr in acquire

    def is_release(call: ast.Call) -> bool:
        return isinstance(call.func, ast.Attribute) and call.func.attr in release

    class_releases: dict[ast.ClassDef, bool] = {}
    findings = []
    for func, enclosing in _functions(source.tree):
        acquires = [
            node
            for node in _own_nodes(func)
            if isinstance(node, ast.Call) and is_acquire(node)
        ]
        if not acquires:
            continue
        if _has_direct_release(func, config.release_methods):
            # Locally paired: the walk enforces release on every return/
            # fall-through path (raise paths are the sanitizer's job).
            for line in cfg.held_exit_lines(func.body, is_acquire, is_release):
                findings.append(
                    Finding(
                        path=source.path,
                        line=line,
                        col=0,
                        code="SIM004",
                        message=(
                            f"{func.name!r} can exit here with an "
                            f"un-released {'/'.join(sorted(acquire))} "
                            "reservation (KV ledger leak)"
                        ),
                    )
                )
            continue
        if enclosing is not None:
            if enclosing not in class_releases:
                class_releases[enclosing] = any(
                    _has_direct_release(method, config.release_methods)
                    for method in enclosing.body
                    if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
                )
            if class_releases[enclosing]:
                # Class-managed ownership (e.g. the NodeEngine state machine
                # releasing in _retire_finished): cross-method conservation
                # is the runtime sanitizer's invariant, not a local leak.
                continue
        for node in acquires:
            findings.append(
                _finding(
                    source,
                    node,
                    "SIM004",
                    f"{func.name!r} acquires a reservation but neither it nor "
                    "its class ever calls "
                    f"{'/'.join(sorted(release))}() (KV ledger leak)",
                )
            )
    return findings


# --- SIM005: exact equality between simulated times -------------------------------


def _is_time_expr(node: ast.expr) -> bool:
    name = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    if name is None:
        return False
    return name in {"now", "_now"} or name.endswith("_time")


def check_sim005(source: SourceFile, config: SimlintConfig) -> list[Finding]:
    findings = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_time_expr(left) or _is_time_expr(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                findings.append(
                    _finding(
                        source,
                        node,
                        "SIM005",
                        f"{symbol} between simulated times; float time "
                        "arithmetic makes exact equality fragile -- compare "
                        "with an ordering or an explicit tolerance",
                    )
                )
    return findings


# --- SIM006: getattr-probing declared interface attributes ------------------------


def check_sim006(source: SourceFile, config: SimlintConfig) -> list[Finding]:
    findings = []
    for node in ast.walk(source.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "getattr"
            and len(node.args) >= 2
        ):
            continue
        probe = node.args[1]
        if (
            isinstance(probe, ast.Constant)
            and isinstance(probe.value, str)
            and probe.value in config.interface_attributes
        ):
            findings.append(
                _finding(
                    source,
                    node,
                    "SIM006",
                    f"getattr-probing for {probe.value!r}; the interface "
                    "declares it with a no-op default -- access it directly",
                )
            )
    return findings


# --- registry ---------------------------------------------------------------------

RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule(
            code="SIM001",
            name="yield-non-event",
            summary="sim process generators must yield Event instances",
            doc=(
                "A generator registered via sim.process()/Process() (or named "
                "*_process) yields a literal, container, or expression that "
                "cannot be an Event.  The engine fails such processes cleanly "
                "today, but before PR 1 this class of bug deadlocked AllOf "
                "waiters; catching it statically keeps the failure out of the "
                "simulation entirely."
            ),
            check=check_sim001,
        ),
        Rule(
            code="SIM002",
            name="determinism-hazard",
            summary="no wall clocks, global RNG, or set iteration in sim code",
            doc=(
                "time.time()/datetime.now() tie results to the host clock, "
                "module-level random.* shares unseeded global state, and "
                "iterating a set feeds hash-order nondeterminism into event "
                "scheduling.  All three break the bit-identical replay that "
                "the symmetry-folding and determinism property tests rely "
                "on.  Host-side wall-clock timing (e.g. experiments/runner.py) "
                "is allowlisted via per-file-ignores."
            ),
            check=check_sim002,
        ),
        Rule(
            code="SIM003",
            name="lost-wakeup",
            summary="an Event constructed but never observed can wake nobody",
            doc=(
                "An Event assigned to a local that is never yielded, "
                "returned, passed on, or given a callback -- or constructed "
                "as a bare expression statement -- can trigger without any "
                "observer, or strand a waiter forever.  The runtime "
                "sanitizer's lost-wakeup check is the dynamic twin of this "
                "rule."
            ),
            check=check_sim003,
        ),
        Rule(
            code="SIM004",
            name="budget-leak",
            summary="occupy()/reserve() must pair with release() on every exit",
            doc=(
                "For functions that both acquire and release a BudgetTracker "
                "reservation, a simple CFG walk verifies a release executes "
                "on every return/fall-through path (raise paths are exempt; "
                "they abort the drain).  Functions that acquire but delegate "
                "release to sibling methods of the same class are class-"
                "managed -- the runtime sanitizer's budget-conservation "
                "check owns that case -- while acquires with no release "
                "anywhere in reach are flagged outright."
            ),
            check=check_sim004,
        ),
        Rule(
            code="SIM005",
            name="time-equality",
            summary="no ==/!= between simulated times",
            doc=(
                "Simulated timestamps are accumulated floats; exact equality "
                "silently stops matching when a model's step arithmetic "
                "changes at the 1e-15 level (the PR-4 bucket-age class).  "
                "Compare with orderings or explicit tolerances.  The one "
                "deliberate exception -- the engine's same-timestamp batch "
                "sweep, which groups entries by the exact heap key it "
                "pushed -- carries an inline suppression."
            ),
            check=check_sim005,
        ),
        Rule(
            code="SIM006",
            name="getattr-probe",
            summary="no getattr-probing for declared interface attributes",
            doc=(
                "PR 4 promoted clamp accounting onto the StepTimeModel "
                "interface precisely to end getattr probing, yet probes for "
                "flush/gpu survived two more PRs.  Anything listed in "
                "interface-attributes is declared with a usable default on "
                "the interface; probing for it hides typos and breaks "
                "subclass contracts silently."
            ),
            check=check_sim006,
        ),
    )
}
