"""``python -m repro.analysis.simlint`` entry point."""

import sys

from repro.analysis.simlint.cli import main

sys.exit(main())
