"""A small must-release walk over function bodies (SIM004's engine).

The question SIM004 asks is the classic resource-pairing one: once a
function calls ``tracker.occupy(...)`` (or ``reserve``), can it fall off a
``return`` -- or off the end -- without a ``release`` having executed on
that path?  Rather than build a full CFG, :func:`held_exit_lines` walks the
statement tree with a *set of possible ledger states* (``HELD`` /
``CLEAN``):

* an acquire call collapses the state set to ``{HELD}``; a release point
  collapses it to ``{CLEAN}``;
* ``if``/``try`` branches fork the set and union the survivors;
* loop bodies run zero or more times, so a release *inside* a loop never
  guarantees anything (the zero-iteration path keeps the pre-loop state),
  while an acquire inside one taints the post-loop set;
* ``raise`` kills its path -- error propagation is the caller's problem
  and the runtime sanitizer's territory, not a leak the linter should
  nag about;
* ``return`` (and falling off the end) reports a violation when ``HELD``
  is among the possible states.

Deliberate approximations: ``break``/``continue`` are treated as straight-
line statements, and ``with`` bodies as plain blocks.  Both err toward
*more* reported paths, never fewer.
"""

from __future__ import annotations

import ast
from typing import Iterable

HELD = "held"
CLEAN = "clean"


def held_exit_lines(
    body: list[ast.stmt],
    is_acquire,
    is_release,
) -> list[int]:
    """Line numbers of exits reachable with the resource still held.

    ``is_acquire`` / ``is_release`` are predicates over :class:`ast.Call`
    nodes.  The returned lines point at the offending ``return`` statement,
    or at the function's last statement for held fall-through.
    """
    walker = _Walker(is_acquire, is_release)
    states = walker.walk(body, {CLEAN})
    if HELD in states and body:
        walker.violations.append(body[-1].lineno)
    return sorted(set(walker.violations))


class _Walker:
    def __init__(self, is_acquire, is_release) -> None:
        self.is_acquire = is_acquire
        self.is_release = is_release
        self.violations: list[int] = []
        #: >0 while inside a ``try`` whose ``finally`` releases on every
        #: path -- returns under such a guard exit clean, not held.
        self._finally_clean_depth = 0

    def walk(self, stmts: Iterable[ast.stmt], states: set[str]) -> set[str]:
        """Push ``states`` through a statement list; return fall-through states."""
        for stmt in stmts:
            if not states:
                break  # every path already returned or raised
            states = self._step(stmt, states)
        return states

    def _step(self, stmt: ast.stmt, states: set[str]) -> set[str]:
        if isinstance(stmt, ast.Return):
            after = self._apply_calls(stmt, states)
            if HELD in after and self._finally_clean_depth == 0:
                self.violations.append(stmt.lineno)
            return set()
        if isinstance(stmt, ast.Raise):
            return set()
        if isinstance(stmt, ast.If):
            states = self._apply_calls(stmt.test, states)
            return self.walk(stmt.body, set(states)) | self.walk(
                stmt.orelse, set(states)
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            header = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
            states = self._apply_calls(header, states)
            once = self.walk(stmt.body, set(states))
            after = states | once
            return self.walk(stmt.orelse, after) if stmt.orelse else after
        if isinstance(stmt, ast.Try):
            guarded = stmt.finalbody and self._finally_releases(stmt.finalbody)
            if guarded:
                self._finally_clean_depth += 1
            after_body = self.walk(stmt.body, set(states))
            # A handler may run after any prefix of the body; entering with
            # the pre-try states keeps the analysis sound for acquires that
            # the body may or may not have reached.
            outcomes = set(after_body)
            for handler in stmt.handlers:
                outcomes |= self.walk(handler.body, set(states) | set(after_body))
            if stmt.orelse:
                outcomes |= self.walk(stmt.orelse, set(after_body))
            if guarded:
                self._finally_clean_depth -= 1
            if stmt.finalbody:
                outcomes = self.walk(stmt.finalbody, outcomes)
            return outcomes
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                states = self._apply_calls(item.context_expr, states)
            return self.walk(stmt.body, states)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return states  # nested scopes are analysed separately
        return self._apply_calls(stmt, states)

    def _finally_releases(self, finalbody: list[ast.stmt]) -> bool:
        """Whether a ``finally`` block releases on every fall-through path."""
        probe = _Walker(self.is_acquire, self.is_release)
        return probe.walk(finalbody, {HELD}) == {CLEAN}

    def _apply_calls(self, node: ast.AST, states: set[str]) -> set[str]:
        """Fold every call inside ``node`` (source order) into the state set."""
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            if self.is_release(call):
                states = {CLEAN}
            elif self.is_acquire(call):
                states = {HELD}
        return states
