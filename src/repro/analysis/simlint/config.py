"""simlint configuration: the ``[tool.simlint]`` pyproject table.

Recognised keys (all optional)::

    [tool.simlint]
    select = ["SIM001", "SIM002"]          # default: every rule
    exclude = ["tests/analysis/fixtures"]  # path prefixes / fnmatch globs
    interface-attributes = ["flush", ...]  # SIM006's no-getattr list
    acquire-methods = ["occupy", "reserve"]    # SIM004 resource pairs
    release-methods = ["release"]

    [tool.simlint.per-file-ignores]
    "src/repro/experiments/runner.py" = ["SIM002"]   # host-side wall clock
    "tests/*" = ["SIM005"]                           # exact-time assertions

Python 3.11+ parses the file with :mod:`tomllib`; on 3.10 (which ships no
TOML reader and this repo installs no third-party one) a constrained
fallback parser handles exactly the shapes above -- string values, arrays
of strings, and one level of sub-tables.
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import dataclass, replace
from pathlib import Path

from repro.errors import ConfigurationError

#: Attributes the serving/system interfaces declare with no-op defaults;
#: ``getattr``-probing for any of these is the SIM006 bug class.
DEFAULT_INTERFACE_ATTRIBUTES = (
    "flush",
    "clamp_counters",
    "grid_clamp_summary",
    "gpu",
)

#: Paired resource methods for SIM004's leak analysis.
DEFAULT_ACQUIRE_METHODS = ("occupy", "reserve")
DEFAULT_RELEASE_METHODS = ("release",)


@dataclass(frozen=True)
class SimlintConfig:
    """Resolved linter configuration (defaults + pyproject + CLI)."""

    select: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    per_file_ignores: tuple[tuple[str, tuple[str, ...]], ...] = ()
    interface_attributes: tuple[str, ...] = DEFAULT_INTERFACE_ATTRIBUTES
    acquire_methods: tuple[str, ...] = DEFAULT_ACQUIRE_METHODS
    release_methods: tuple[str, ...] = DEFAULT_RELEASE_METHODS

    def selected(self, code: str) -> bool:
        """Whether ``code`` is enabled (an empty ``select`` enables all)."""
        return not self.select or code in self.select

    def excluded(self, path: str) -> bool:
        """Whether ``path`` is excluded from linting entirely."""
        return any(_path_matches(path, pattern) for pattern in self.exclude)

    def ignored_codes(self, path: str) -> frozenset[str]:
        """Codes silenced for ``path`` by ``per-file-ignores``."""
        ignored: set[str] = set()
        for pattern, codes in self.per_file_ignores:
            if _path_matches(path, pattern):
                ignored.update(codes)
        return frozenset(ignored)


def _path_matches(path: str, pattern: str) -> bool:
    """Prefix or fnmatch-style match against a normalised relative path."""
    candidate = Path(path)
    candidates = [candidate.as_posix()]
    if candidate.is_absolute():
        # Patterns are written relative to the repo root; let absolute
        # lint paths match them when run from that root.
        try:
            candidates.append(candidate.relative_to(Path.cwd()).as_posix())
        except ValueError:
            pass
    pattern = pattern.rstrip("/")
    for normal in candidates:
        if normal == pattern or normal.startswith(pattern + "/"):
            return True
        if fnmatch.fnmatch(normal, pattern):
            return True
    return False


def find_pyproject(start: str | Path = ".") -> Path | None:
    """Walk upward from ``start`` to the nearest ``pyproject.toml``."""
    current = Path(start).resolve()
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: str | Path | None = None) -> SimlintConfig:
    """Build a config from ``[tool.simlint]`` (defaults when absent)."""
    if pyproject is None:
        pyproject = find_pyproject()
        if pyproject is None:
            return SimlintConfig()
    path = Path(pyproject)
    if not path.is_file():
        raise ConfigurationError(f"simlint config file not found: {path}")
    table = _read_tool_table(path.read_text())
    return config_from_table(table)


def config_from_table(table: dict) -> SimlintConfig:
    """Validate a raw ``[tool.simlint]`` mapping into a config."""
    known = {
        "select",
        "exclude",
        "per-file-ignores",
        "interface-attributes",
        "acquire-methods",
        "release-methods",
    }
    unknown = sorted(set(table) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown [tool.simlint] key(s): {', '.join(unknown)} "
            f"(expected: {', '.join(sorted(known))})"
        )
    config = SimlintConfig(
        select=_string_tuple(table, "select", upper=True),
        exclude=_string_tuple(table, "exclude"),
    )
    ignores = table.get("per-file-ignores", {})
    if not isinstance(ignores, dict):
        raise ConfigurationError("[tool.simlint] per-file-ignores must be a table")
    per_file = tuple(
        (pattern, tuple(code.upper() for code in _as_string_list(codes, pattern)))
        for pattern, codes in ignores.items()
    )
    config = replace(config, per_file_ignores=per_file)
    for key, attr in (
        ("interface-attributes", "interface_attributes"),
        ("acquire-methods", "acquire_methods"),
        ("release-methods", "release_methods"),
    ):
        if key in table:
            config = replace(config, **{attr: _string_tuple(table, key)})
    return config


def _string_tuple(table: dict, key: str, upper: bool = False) -> tuple[str, ...]:
    values = _as_string_list(table.get(key, []), key)
    return tuple(v.upper() if upper else v for v in values)


def _as_string_list(value, key) -> list[str]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise ConfigurationError(f"[tool.simlint] {key!r} must be a list of strings")
    return value


# --- TOML reading ---------------------------------------------------------------


def _read_tool_table(text: str) -> dict:
    """Extract ``[tool.simlint]`` (and its sub-tables) from pyproject text."""
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10: no stdlib TOML reader
        return _fallback_parse(text)
    data = tomllib.loads(text)
    return data.get("tool", {}).get("simlint", {})


_SECTION_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KEY_RE = re.compile(r"^(?P<key>[\w\-]+|\"[^\"]+\"|'[^']+')\s*=\s*(?P<value>.+)$")


def _fallback_parse(text: str) -> dict:
    """Constrained TOML subset parser for the ``[tool.simlint]`` tables.

    Handles string scalars, (possibly multi-line) arrays of strings, and
    ``[tool.simlint.<sub>]`` sub-tables -- the full shape this module
    documents, nothing more.  Only used when :mod:`tomllib` is missing.
    """
    result: dict = {}
    target: dict | None = None
    lines = iter(text.splitlines())
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        section = _SECTION_RE.match(stripped)
        if section:
            name = section.group("name").strip()
            if name == "tool.simlint":
                target = result
            elif name.startswith("tool.simlint."):
                sub = name[len("tool.simlint.") :].strip().strip("\"'")
                target = result.setdefault(sub, {})
            else:
                target = None
            continue
        if target is None:
            continue
        match = _KEY_RE.match(stripped)
        if match is None:
            raise ConfigurationError(
                f"simlint fallback TOML parser cannot read line: {stripped!r}"
            )
        key = match.group("key").strip("\"'")
        value = match.group("value").strip()
        while value.startswith("[") and not _array_closed(value):
            value += " " + next(lines).strip()
        target[key] = _parse_value(value)
    return result


def _array_closed(value: str) -> bool:
    return value.count("[") <= value.count("]")


def _parse_value(value: str):
    value = value.split("#", 1)[0].strip() if not value.startswith('"') else value
    if value.startswith("["):
        inner = value.strip()[1:-1]
        items = [item.strip() for item in inner.split(",")]
        return [_parse_string(item) for item in items if item]
    return _parse_string(value)


def _parse_string(value: str) -> str:
    value = value.strip()
    if len(value) >= 2 and value[0] == value[-1] and value[0] in {'"', "'"}:
        return value[1:-1]
    raise ConfigurationError(
        f"simlint fallback TOML parser expects quoted strings, got {value!r}"
    )
