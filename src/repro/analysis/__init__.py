"""Analytical models and program analysis for the simulation substrate.

Closed-form models: traffic (Eq. 3), capacity, cost, energy, endurance.
Correctness tooling: the runtime simulation sanitizer
(:mod:`repro.analysis.sanitizer`) and the DES-aware static linter
(:mod:`repro.analysis.simlint`, ``python -m repro.analysis.simlint``).
"""

from repro.analysis.capacity import PlacementPlan, max_feasible_batch, plan_placement
from repro.analysis.sanitizer import (
    SANITIZE_ENV,
    SanitizerError,
    SimSanitizer,
    sanitize_enabled_by_env,
)
from repro.analysis.cost import CostModel, cost_efficiency
from repro.analysis.endurance import EnduranceModel, serviceable_requests
from repro.analysis.energy import EnergyBreakdown, energy_breakdown
from repro.analysis.traffic import (
    ans_step_traffic,
    ans_traffic_reduction_ratio,
    baseline_step_traffic,
    xcache_step_traffic,
)

__all__ = [
    "SANITIZE_ENV",
    "SanitizerError",
    "SimSanitizer",
    "sanitize_enabled_by_env",
    "PlacementPlan",
    "max_feasible_batch",
    "plan_placement",
    "CostModel",
    "cost_efficiency",
    "EnduranceModel",
    "serviceable_requests",
    "EnergyBreakdown",
    "energy_breakdown",
    "ans_step_traffic",
    "ans_traffic_reduction_ratio",
    "baseline_step_traffic",
    "xcache_step_traffic",
]
