"""Runtime simulation sanitizer: cheap invariant checks for the DES.

The repo's history names the bug classes that corrupt serving numbers
silently: lost wakeups (a process parked on an event nobody triggers),
event-heap time travel, and KV-ledger drift (an ``occupy()`` whose
``release()`` never lands).  The sanitizer turns each of these from a
"numbers look odd" investigation into a structured
:class:`SanitizerError` raised at the offending simulated time.

Enable it per simulator (``Simulator(sanitize=True)``) or process-wide via
the ``REPRO_SIM_SANITIZE=1`` environment variable (the test suite runs
with it on; the benchmark gates run with it off, and the ``off`` path is a
single predicate check per hook site so the gates stay honest).  The
checks are:

* **finite-delay** -- no callback may be scheduled a NaN/infinite delay
  away (a NaN timestamp silently corrupts the heap order invariant);
* **heap-monotonicity** -- the batch sweep may never produce a timestamp
  behind the simulated clock (the engine always rejects gross violations;
  the sanitizer makes the check exact);
* **callback-drain** -- a triggered event's callback list must be fully
  consumed by the trigger (nothing may re-arm waiters on a fired event);
* **lost-wakeup** -- when a drain exhausts the heap, no untriggered event
  may still hold registered waiters (the PR-1 deadlock class, caught even
  when the waiter is not a process the engine would fail);
* **budget-conservation** -- enforced by
  :class:`~repro.serving.budget.BudgetTracker` (occupied bytes never go
  negative; every reservation is released by drain end) and by
  :class:`~repro.serving.cluster.ClusterScheduler` (fleet report token and
  request counts must equal the sum of the per-node outcomes);
* **tier-conservation** -- enforced by
  :class:`~repro.serving.kvtiers.TieredBudgetTracker` on tiered nodes:
  per-tier occupancy never exceeds the tier's capacity and never goes
  negative, every request's tier residency sums to its flat-ledger entry,
  and releases -- including node-death migrations -- drain every tier the
  request touched.

This module sits below the simulation layers on purpose: it imports only
:mod:`repro.errors`, so :mod:`repro.sim.engine` and
:mod:`repro.serving.budget` can both hook into it without cycles.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Event, Simulator

#: Environment variable that enables the sanitizer process-wide.
SANITIZE_ENV = "REPRO_SIM_SANITIZE"


def sanitize_enabled_by_env() -> bool:
    """Whether ``REPRO_SIM_SANITIZE`` asks for sanitized simulators."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in {"1", "true", "yes", "on"}


class SanitizerError(SimulationError):
    """A simulation invariant was violated.

    Carries the violated ``invariant`` name plus -- where the check knows
    them -- the offending simulated time and serving request id, so a
    failure inside a million-event drain points at the culprit instead of
    the symptom.
    """

    def __init__(
        self,
        message: str,
        *,
        invariant: str,
        sim_time: float | None = None,
        request_id: int | None = None,
    ) -> None:
        context = [f"invariant={invariant}"]
        if sim_time is not None:
            context.append(f"sim_time={sim_time!r}")
        if request_id is not None:
            context.append(f"request_id={request_id}")
        super().__init__(f"[sanitizer] {message} ({', '.join(context)})")
        self.invariant = invariant
        self.sim_time = sim_time
        self.request_id = request_id


class SimSanitizer:
    """Per-simulator invariant state; installed by ``Simulator(sanitize=True)``.

    Holds strong references to every untriggered event that has waiters:
    those are exactly the events a drain-end check must be able to name,
    and they are removed the moment they trigger, so steady-state memory
    tracks the (small) set of genuinely pending waits.
    """

    __slots__ = ("_waiting",)

    def __init__(self) -> None:
        self._waiting: dict[int, "Event"] = {}

    # --- engine hooks -----------------------------------------------------------

    def check_schedule(self, now: float, delay: float) -> None:
        """finite-delay: reject NaN/inf delays before they enter the heap."""
        if not math.isfinite(delay):
            raise SanitizerError(
                f"scheduled a callback with non-finite delay {delay!r}",
                invariant="finite-delay",
                sim_time=now,
            )

    def check_batch_time(self, now: float, batch_time: float) -> None:
        """heap-monotonicity: the next batch may never run behind the clock."""
        if batch_time < now:
            raise SanitizerError(
                f"event heap produced batch time {batch_time!r} behind the "
                f"simulated clock",
                invariant="heap-monotonicity",
                sim_time=now,
            )

    def note_waiter(self, event: "Event") -> None:
        """Track an untriggered event that just gained a waiter."""
        self._waiting[id(event)] = event

    def note_triggered(self, event: "Event") -> None:
        """Drop a fired event from tracking; verify its callbacks drained."""
        self._waiting.pop(id(event), None)
        if event._callbacks is not None:
            raise SanitizerError(
                f"event {event.name!r} still holds registered callbacks "
                "after triggering",
                invariant="callback-drain",
                sim_time=event.sim.now,
            )

    def check_drained(self, sim: "Simulator") -> None:
        """lost-wakeup: after a full drain, nobody may still be waiting.

        Only conclusive when the heap holds no live entries -- an event
        with waiters *and* a pending trigger is simply not due yet, so the
        check skips itself while live work remains.
        """
        if not self._waiting:
            return
        for entry in sim._heap:
            callback = entry[2]
            if not getattr(callback, "cancelled", False):
                return
        names = sorted(
            event.name or type(event).__name__ for event in self._waiting.values()
        )
        shown = ", ".join(repr(n) for n in names[:5])
        if len(names) > 5:
            shown += f", ... ({len(names) - 5} more)"
        raise SanitizerError(
            f"{len(names)} event(s) still have registered waiters after the "
            f"drain exhausted the heap: {shown}",
            invariant="lost-wakeup",
            sim_time=sim.now,
        )
