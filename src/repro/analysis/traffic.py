"""Interconnect-traffic models (Section 4.1's Equation 3 and Section 4.2).

These closed-form byte counts serve two purposes: they are the paper's
first-order argument for attention near storage (the host-interconnect
traffic ratio grows linearly in the context length, Equation 3), and they
cross-validate the discrete-event simulation -- the unit tests assert the
simulated byte counters match these formulas exactly.

All quantities are *per decode step, per transformer layer*, in bytes;
``h`` below is the model hidden size and ``s`` the context length, matching
the paper's notation (MHA, FP16: K+V for the whole context is ``4sh``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.config import ModelConfig


@dataclass(frozen=True)
class StepTraffic:
    """Host-interconnect bytes moved in one decode step of one layer."""

    interconnect_read: float
    interconnect_write: float
    storage_read: float
    storage_write: float

    @property
    def interconnect_total(self) -> float:
        """Total bytes crossing the shared system interconnect."""
        return self.interconnect_read + self.interconnect_write


def baseline_step_traffic(model: ModelConfig, batch_size: int, seq_len: int) -> StepTraffic:
    """Conventional offloading (Figure 1b): the whole KV cache crosses PCIe.

    Reads are ``4sh`` per element (K and V, FP16); writes are the new K/V
    pair, ``4h``.  Storage traffic equals interconnect traffic because every
    byte read from flash is shipped to the host.
    """
    kv_read = model.kv_bytes_per_token_per_layer() * seq_len * batch_size
    kv_write = model.kv_bytes_per_token_per_layer() * batch_size
    return StepTraffic(
        interconnect_read=kv_read,
        interconnect_write=kv_write,
        storage_read=kv_read,
        storage_write=kv_write,
    )


def ans_step_traffic(model: ModelConfig, batch_size: int, seq_len: int) -> StepTraffic:
    """Attention near storage (Figure 4a): only Q/K/V in, outputs back.

    The interconnect carries the new query/key/value vectors down (``6h``
    per element for MHA) and the attention output up (``2h``); the ``4sh``
    KV read stays on the device-internal path (storage_read).
    """
    new_qkv = (
        model.n_heads * model.head_dim + 2 * model.kv_proj_dim
    ) * model.bytes_per_element * batch_size
    attn_out = model.n_heads * model.head_dim * model.bytes_per_element * batch_size
    kv_read = model.kv_bytes_per_token_per_layer() * seq_len * batch_size
    kv_write = model.kv_bytes_per_token_per_layer() * batch_size
    return StepTraffic(
        interconnect_read=attn_out,
        interconnect_write=new_qkv,
        storage_read=kv_read,
        storage_write=kv_write,
    )


def ans_traffic_reduction_ratio(seq_len: int) -> float:
    """Equation 3: ``T_BASE / T_ANS = (s + 1) / 2`` for MHA models.

    Baseline interconnect traffic is ``4sh + 4h``; with ANS it becomes
    ``2h + 6h``.  The ratio is independent of the hidden size and grows
    linearly with the context length.
    """
    if seq_len < 1:
        raise ConfigurationError("sequence length must be >= 1")
    return (seq_len + 1) / 2.0


def xcache_step_traffic(
    model: ModelConfig, batch_size: int, seq_len: int, alpha: float
) -> StepTraffic:
    """ANS + cooperative X-cache (Section 4.2).

    An ``alpha`` fraction of the batch x head tiles is served by streaming
    the pre-projection activations ``X`` (half the size of K+V for MHA) to
    the GPU over the interconnect; the remaining ``1 - alpha`` KV bytes stay
    on the internal storage path.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ConfigurationError(f"alpha must be within [0, 1], got {alpha}")
    base = ans_step_traffic(model, batch_size, seq_len)
    x_bytes_full = model.hidden * model.bytes_per_element * seq_len * batch_size
    kv_bytes_full = model.kv_bytes_per_token_per_layer() * seq_len * batch_size
    return StepTraffic(
        interconnect_read=base.interconnect_read + alpha * x_bytes_full,
        interconnect_write=base.interconnect_write,
        storage_read=alpha * x_bytes_full + (1.0 - alpha) * kv_bytes_full,
        storage_write=base.storage_write,
    )


def x_to_kv_size_ratio(model: ModelConfig) -> float:
    """``S_X / S_KV``: 0.5 for MHA; above 1 for aggressively grouped GQA.

    The X-cache stores ``s x h`` activations versus ``2 x s x kv_proj`` for
    K+V, so for GQA models with few KV heads the activation cache can be
    *larger* than the KV pair it regenerates -- which shifts the optimal
    alpha (see :func:`repro.core.xcache.optimal_alpha`).
    """
    return model.hidden / (2.0 * model.kv_proj_dim)
