"""Cost-effectiveness analysis (Figure 16a): tokens per second per dollar.

Component prices follow Section 6.6's evaluation: a $15,000 host server, a
$7,000 A100 (or $30,000 H100), a $10,000 PCIe expansion chassis, $2,400 per
SmartSSD, and $400 per conventional PCIe 4.0 SSD.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

HOST_SERVER_USD = 15_000.0
PCIE_EXPANSION_USD = 10_000.0
SMARTSSD_USD = 2_400.0
CONVENTIONAL_SSD_USD = 400.0
GPU_PRICES_USD = {"A100": 7_000.0, "H100": 30_000.0, "A6000": 4_500.0}


@dataclass(frozen=True)
class CostModel:
    """Capital cost of one evaluated configuration."""

    label: str
    gpu: str = "A100"
    n_gpus: int = 1
    n_conventional_ssds: int = 0
    n_smartssds: int = 0
    n_hosts: int = 1
    needs_expansion: bool = False

    def total_usd(self) -> float:
        """Total system price."""
        if self.gpu not in GPU_PRICES_USD:
            raise ConfigurationError(f"no price for GPU {self.gpu!r}")
        total = self.n_hosts * HOST_SERVER_USD
        total += self.n_gpus * GPU_PRICES_USD[self.gpu]
        total += self.n_conventional_ssds * CONVENTIONAL_SSD_USD
        total += self.n_smartssds * SMARTSSD_USD
        if self.needs_expansion:
            total += PCIE_EXPANSION_USD
        return total


def flexgen_cost(gpu: str = "A100") -> CostModel:
    """The baseline server: host + GPU + four PCIe 4.0 drives."""
    return CostModel(label=f"FLEX ({gpu})", gpu=gpu, n_conventional_ssds=4)


def hilos_cost(n_smartssds: int, gpu: str = "A100") -> CostModel:
    """HILOS replaces the drives with SmartSSDs behind an expansion chassis."""
    return CostModel(
        label=f"HILOS ({n_smartssds} SmartSSDs, {gpu})",
        gpu=gpu,
        n_smartssds=n_smartssds,
        needs_expansion=True,
    )


def multinode_cost(n_nodes: int = 2, gpus_per_node: int = 4, gpu: str = "A6000") -> CostModel:
    """The distributed vLLM fleet of Section 6.6."""
    return CostModel(
        label=f"vLLM ({n_nodes}x{gpus_per_node} {gpu})",
        gpu=gpu,
        n_gpus=n_nodes * gpus_per_node,
        n_hosts=n_nodes,
    )


def cost_efficiency(tokens_per_second: float, cost: CostModel) -> float:
    """Tokens/sec/$ -- the Figure 16a metric."""
    total = cost.total_usd()
    if total <= 0:
        raise ConfigurationError("system cost must be positive")
    return tokens_per_second / total
