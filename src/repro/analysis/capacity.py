"""Capacity planning: where weights/KV live and the feasible batch size.

The paper's baselines differ mostly in *placement*: ``FLEX(DRAM)`` keeps the
KV cache in host memory and must shrink the batch (to 2, or to OOM) as
contexts grow, while storage-backed systems keep batch 16 but pay I/O.
This module reproduces those feasibility decisions, including the paper's
placement policy that weights of >100B-parameter models go to storage.

Memory overheads follow offloading-framework practice: pinned staging and
double-buffering inflate resident KV by ~1.6x, and ~10% of DRAM is reserved
for the OS and the runtime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CapacityError
from repro.models.config import ModelConfig
from repro.models.footprint import activation_workspace_bytes
from repro.units import GiB

#: Resident-KV inflation from pinned staging buffers and double buffering.
KV_OVERHEAD_FACTOR = 1.6

#: Fraction of host DRAM reserved for OS, framework, and page cache.
DRAM_RESERVE_FRACTION = 0.10

#: Models above this parameter count keep weights on storage (Section 6.1).
WEIGHTS_TO_STORAGE_THRESHOLD = 100e9


class KVPlacement(enum.Enum):
    """Where the KV cache lives during decoding."""

    DRAM = "dram"
    STORAGE = "storage"
    NSP = "nsp"


class WeightPlacement(enum.Enum):
    """Where model weights are staged between layer executions."""

    DRAM = "dram"
    STORAGE = "storage"
    GPU = "gpu"


@dataclass(frozen=True)
class PlacementPlan:
    """A validated placement of weights and KV cache for one run."""

    model: str
    batch_size: int
    seq_len: int
    kv_placement: KVPlacement
    weight_placement: WeightPlacement
    dram_resident_bytes: float
    storage_resident_bytes: float

    @property
    def weights_on_storage(self) -> bool:
        """Whether per-layer weight loads come from flash instead of DRAM."""
        return self.weight_placement is WeightPlacement.STORAGE


def default_weight_placement(model: ModelConfig) -> WeightPlacement:
    """The paper's policy: >100B-parameter models offload weights to flash."""
    if model.param_count() > WEIGHTS_TO_STORAGE_THRESHOLD:
        return WeightPlacement.STORAGE
    return WeightPlacement.DRAM


def _usable_dram(host_dram_bytes: float) -> float:
    return host_dram_bytes * (1.0 - DRAM_RESERVE_FRACTION)


def plan_placement(
    model: ModelConfig,
    batch_size: int,
    seq_len: int,
    kv_placement: KVPlacement,
    host_dram_bytes: float,
    writeback_buffer_bytes: float = 0.0,
) -> PlacementPlan:
    """Validate a placement and compute resident byte totals.

    Raises :class:`~repro.errors.CapacityError` when host DRAM cannot hold
    the plan -- the ``CPU OOM`` bars of Figures 10-12.
    """
    weight_placement = default_weight_placement(model)
    dram = 0.0
    storage = 0.0
    if weight_placement is WeightPlacement.DRAM:
        dram += model.weight_bytes() * 1.1  # fragmentation/pinning slack
    else:
        storage += model.weight_bytes()
    kv_bytes = model.kv_cache_bytes(batch_size, seq_len)
    if kv_placement is KVPlacement.DRAM:
        dram += kv_bytes * KV_OVERHEAD_FACTOR
    else:
        storage += kv_bytes
        dram += writeback_buffer_bytes
    dram += activation_workspace_bytes(model, batch_size, seq_len)
    usable = _usable_dram(host_dram_bytes)
    if dram > usable:
        raise CapacityError(
            f"{model.name} bs={batch_size} s={seq_len}: plan needs "
            f"{dram / GiB:.0f} GiB host DRAM, only {usable / GiB:.0f} GiB usable "
            f"(CPU OOM)"
        )
    return PlacementPlan(
        model=model.name,
        batch_size=batch_size,
        seq_len=seq_len,
        kv_placement=kv_placement,
        weight_placement=weight_placement,
        dram_resident_bytes=dram,
        storage_resident_bytes=storage,
    )


def max_feasible_batch(
    model: ModelConfig,
    seq_len: int,
    kv_placement: KVPlacement,
    host_dram_bytes: float,
    requested_batch: int,
) -> int:
    """Largest power-of-two batch <= requested that fits the placement.

    Returns 0 when even batch size 1 OOMs (reported as ``CPU OOM``).
    Offloading frameworks halve the batch until resident state fits, which
    is how FLEX(DRAM) lands on batch 2 for OPT-66B at 32K (Figure 11a).
    """
    batch = requested_batch
    while batch >= 1:
        try:
            plan_placement(model, batch, seq_len, kv_placement, host_dram_bytes)
            return batch
        except CapacityError:
            batch //= 2
    return 0


def gpu_working_set_bytes(
    model: ModelConfig, batch_size: int, chunk_tokens: int = 4096
) -> float:
    """Per-layer GPU working set during decoding (double-buffered weights,
    activations, and one streaming chunk of regenerated K/V for the X-cache
    path -- regeneration is tiled so memory stays bounded regardless of
    context length)."""
    weights = 2 * (
        model.attention_weight_bytes_per_layer()
        + model.mlp_weight_bytes_per_layer(0)
    )
    activations = 4 * batch_size * model.hidden * model.bytes_per_element
    regen_chunk = (
        2 * batch_size * chunk_tokens * model.kv_proj_dim * model.bytes_per_element
    )
    x_chunk = batch_size * chunk_tokens * model.hidden * model.bytes_per_element
    return weights + activations + regen_chunk + x_chunk


def fits_gpu(model: ModelConfig, batch_size: int, gpu_memory_bytes: float) -> bool:
    """Whether the decode-time working set fits GPU memory."""
    return gpu_working_set_bytes(model, batch_size) <= gpu_memory_bytes * 0.9
