"""SSD endurance analysis (Figure 16b): total serviceable requests.

The KV cache is write-once/read-many, so drive lifetime is governed by the
total write volume.  Each 3.84 TB SmartSSD sustains 7.008 PB written at a
3-month retention target; the fleet's aggregate budget divided by the
physical bytes one request writes gives the serviceable-request count.

HILOS reduces write volume two ways (Section 6.6):

* the X-cache stores activations (half of K+V for MHA) for an ``alpha``
  fraction, cutting writes by ~``alpha/2``;
* delayed writeback turns sub-page appends into page-aligned runs,
  removing the write amplification a naive NSP layout would suffer, and
  larger spill intervals amortize the FTL's per-run bookkeeping further.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.traffic import x_to_kv_size_ratio
from repro.errors import ConfigurationError
from repro.models.config import ModelConfig
from repro.units import TB
from repro.workloads.requests import RequestClass

#: PBW rating of one 3.84 TB SmartSSD (Section 6.6).
PBW_PER_DEVICE_BYTES = 7008 * TB

#: Flash-internal overhead per spill run (FTL mapping-table journaling,
#: partial-page tail padding at run boundaries, and the garbage-collection
#: cost of interleaved small runs).  Modeled as ``1 + k / c``: each spill
#: pays a roughly constant bookkeeping cost, amortized over the ``c``
#: entries it commits, which is what gives c=32 its extra 1.02-1.05x
#: endurance over c=16 in Figure 16(b).
FTL_OVERHEAD_COEFFICIENT = 4.0

#: Effective write amplification of the FlexGen baseline's RAID-0 layout
#: (chunked striping of per-layer appends across many drives).
BASELINE_WRITE_AMPLIFICATION = 1.10


@dataclass(frozen=True)
class EnduranceModel:
    """Write-volume model of one system configuration."""

    label: str
    n_devices: int
    alpha: float = 0.0
    spill_interval: int = 1
    is_hilos: bool = False

    def write_amplification(self, model: ModelConfig) -> float:
        """Physical-over-logical bytes for decode-time KV appends."""
        if not self.is_hilos:
            return BASELINE_WRITE_AMPLIFICATION
        # Imported lazily: repro.core depends on repro.analysis at import time.
        from repro.core.writeback import writeback_write_amplification

        page_round = writeback_write_amplification(model, self.spill_interval)
        ftl = 1.0 + FTL_OVERHEAD_COEFFICIENT / self.spill_interval
        return page_round * ftl

    def logical_fraction(self, model: ModelConfig) -> float:
        """KV bytes actually written relative to the full K+V volume."""
        if not self.is_hilos or self.alpha <= 0:
            return 1.0
        ratio = x_to_kv_size_ratio(model)
        return self.alpha * ratio + (1.0 - self.alpha)

    def bytes_per_request(self, model: ModelConfig, request: RequestClass) -> float:
        """Physical flash bytes one request writes (prefill + decode).

        Prefill rows are written in large contiguous runs on every system
        (write amplification ~1); only the decode-time appends carry the
        system's amplification, and the X-cache fraction scales both.
        """
        fraction = self.logical_fraction(model)
        prefill_logical = model.kv_cache_bytes(1, request.input_tokens) * fraction
        decode_logical = model.kv_cache_bytes(1, request.output_tokens) * fraction
        prefill_amp = 1.0 if self.is_hilos else BASELINE_WRITE_AMPLIFICATION
        return prefill_logical * prefill_amp + decode_logical * self.write_amplification(model)

    def fleet_budget_bytes(self) -> float:
        """Aggregate PBW budget of the storage fleet."""
        return self.n_devices * PBW_PER_DEVICE_BYTES


def serviceable_requests(
    model: ModelConfig,
    request: RequestClass,
    endurance: EnduranceModel,
) -> float:
    """Total requests the fleet can absorb before exhausting its PBW."""
    per_request = endurance.bytes_per_request(model, request)
    if per_request <= 0:
        raise ConfigurationError("request writes no bytes; endurance undefined")
    return endurance.fleet_budget_bytes() / per_request


def flexgen_endurance(n_devices: int = 16) -> EnduranceModel:
    """The ``FLEX(16 PCIe 3.0 SSDs)`` comparator of Figure 16b."""
    return EnduranceModel(label="FLEX (16 PCIe 3.0 SSDs)", n_devices=n_devices)


def hilos_endurance(
    n_devices: int = 16, alpha: float = 0.5, spill_interval: int = 16
) -> EnduranceModel:
    """HILOS with X-cache and delayed writeback."""
    return EnduranceModel(
        label=f"HILOS ({n_devices} SmartSSDs, c={spill_interval})",
        n_devices=n_devices,
        alpha=alpha,
        spill_interval=spill_interval,
        is_hilos=True,
    )
