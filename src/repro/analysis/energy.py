"""Energy-consumption breakdown (Figure 17a).

The paper measures GPU power with NVML, CPU/DRAM with RAPL, SmartSSD power
through the expansion-board controller, and uses the 13 W datasheet figure
for the PM9A3 baseline drives.  We reproduce the same arithmetic: component
power (idle floor + utilization-scaled dynamic part) times the measured
per-token latency, attributed per component.

HILOS's SmartSSDs draw more power than plain drives, but the latency
reduction dominates: energy per token falls by up to ~85% against
``FLEX(SSD)`` (Section 6.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.accelerator.power import accelerator_power_w
from repro.errors import ConfigurationError
from repro.sim.devices import GPU_SPECS

if TYPE_CHECKING:  # circular at runtime: baselines imports analysis
    from repro.baselines.base import MeasuredResult

#: Component power model parameters.
GPU_IDLE_W = 55.0
CPU_IDLE_W = 80.0
CPU_TDP_W = 230.0
DRAM_W_PER_GIB = 0.12  # DDR4 background + activate power at 512 GiB scale
DRAM_CAPACITY_GIB = 512
CONVENTIONAL_SSD_ACTIVE_W = 13.0  # PM9A3 datasheet
CONVENTIONAL_SSD_IDLE_W = 5.0
SMARTSSD_NVME_W = 8.0  # NVMe portion; the FPGA adds Table 3's on-chip power


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per generated token, per component."""

    system: str
    cpu_j: float
    dram_j: float
    gpu_j: float
    ssd_j: float

    @property
    def total_j(self) -> float:
        """Total energy per token."""
        return self.cpu_j + self.dram_j + self.gpu_j + self.ssd_j

    def fractions(self) -> dict[str, float]:
        """Component shares of the total."""
        total = self.total_j
        if total <= 0:
            return {"cpu": 0.0, "dram": 0.0, "gpu": 0.0, "ssd": 0.0}
        return {
            "cpu": self.cpu_j / total,
            "dram": self.dram_j / total,
            "gpu": self.gpu_j / total,
            "ssd": self.ssd_j / total,
        }


def energy_breakdown(
    result: "MeasuredResult",
    gpu: str = "A100",
    n_conventional_ssds: int = 0,
    n_smartssds: int = 0,
    d_group: int = 1,
    storage_utilization: float = 0.7,
) -> EnergyBreakdown:
    """Energy per generated token for one measured configuration."""
    if result.oom or result.tokens_per_second <= 0:
        raise ConfigurationError(f"cannot compute energy for OOM result {result.system}")
    if gpu not in GPU_SPECS:
        raise ConfigurationError(f"unknown GPU {gpu!r}")
    seconds_per_token = 1.0 / result.tokens_per_second
    gpu_power = GPU_IDLE_W + (GPU_SPECS[gpu].power_w - GPU_IDLE_W) * result.utilization.gpu
    cpu_power = CPU_IDLE_W + (CPU_TDP_W - CPU_IDLE_W) * result.utilization.cpu
    dram_power = DRAM_W_PER_GIB * DRAM_CAPACITY_GIB
    ssd_power = n_conventional_ssds * (
        CONVENTIONAL_SSD_IDLE_W
        + (CONVENTIONAL_SSD_ACTIVE_W - CONVENTIONAL_SSD_IDLE_W) * storage_utilization
    )
    ssd_power += n_smartssds * (
        SMARTSSD_NVME_W + accelerator_power_w(d_group) * storage_utilization
    )
    return EnergyBreakdown(
        system=result.system,
        cpu_j=cpu_power * seconds_per_token,
        dram_j=dram_power * seconds_per_token,
        gpu_j=gpu_power * seconds_per_token,
        ssd_j=ssd_power * seconds_per_token,
    )
