"""Result tables and formatting shared by all experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class Table:
    """A paper-style result table: title, column headers, value rows."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"table {self.title!r}: row has {len(values)} values, "
                f"expected {len(self.columns)}"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list:
        """All values of one column."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ConfigurationError(
                f"table {self.title!r} has no column {name!r}"
            ) from None
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict]:
        """Rows as column-keyed dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def format(self) -> str:
        """Aligned plain-text rendering."""
        def render(value) -> str:
            if isinstance(value, float):
                if value == 0:
                    return "0"
                if abs(value) >= 1000 or abs(value) < 0.001:
                    return f"{value:.3e}"
                return f"{value:.3f}"
            return str(value)

        cells = [[render(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def format_tables(tables: list[Table]) -> str:
    """Render several tables separated by blank lines."""
    return "\n\n".join(table.format() for table in tables)


def normalize(values: list[float], baseline: float) -> list[float]:
    """Values relative to a baseline (the paper normalizes to FLEX(SSD))."""
    if baseline <= 0:
        raise ConfigurationError("baseline must be positive for normalization")
    return [v / baseline for v in values]


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values."""
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    product = 1.0
    for v in positive:
        product *= v
    return product ** (1.0 / len(positive))
