"""Offline serving throughput: policy x system queue-drain comparison.

Unlike the figure harnesses, which measure fixed ``(batch, seq_len)``
points, this experiment drains a seeded heterogeneous request queue (the
Azure-derived Short/Medium/Long mix) through each system under the three
scheduling policies and reports sustained tokens/s, per-request latency,
and the Figure 16a-style tokens/s/$ -- the regime the paper's
cost-effectiveness argument actually targets.
"""

from __future__ import annotations

from repro.baselines.registry import build_inference_system
from repro.experiments.harness import Table
from repro.models import get_model
from repro.serving import default_policies, drain_queue
from repro.workloads import sample_request_classes

MODEL = "OPT-66B"
BATCH_SLOTS = 16
SEED = 7

FAST_SYSTEMS = ["FLEX(SSD)", "HILOS (8 SmartSSDs)"]
FULL_SYSTEMS = [
    "FLEX(SSD)",
    "FLEX(DRAM)",
    "DS+UVM(DRAM)",
    "HILOS (8 SmartSSDs)",
    "HILOS (16 SmartSSDs)",
]

FAST_REQUESTS = 64
FULL_REQUESTS = 256


def run(
    fast: bool = True,
    systems: list[str] | None = None,
    n_requests: int | None = None,
    seed: int = SEED,
) -> list[Table]:
    """Drain one seeded queue through every (system, policy) pair."""
    systems = systems or (FAST_SYSTEMS if fast else FULL_SYSTEMS)
    n_requests = n_requests or (FAST_REQUESTS if fast else FULL_REQUESTS)
    queue = sample_request_classes(n_requests, seed=seed)
    model = get_model(MODEL)
    table = Table(
        title=f"Offline serving throughput ({MODEL}, {n_requests} mixed requests)",
        columns=[
            "system",
            "policy",
            "completed",
            "tokens_per_s",
            "mean_latency_s",
            "p95_latency_s",
            "peak_kv_gb",
            "tokens_per_s_per_usd",
        ],
        notes="seeded Azure Short/Medium/Long mix; continuous batching is "
        "capacity-aware against the system's KV cache home",
    )
    for label in systems:
        system = build_inference_system(label, model)
        for report in drain_queue(system, default_policies(BATCH_SLOTS), queue):
            table.add_row(
                label,
                report.policy,
                report.completed,
                report.tokens_per_second,
                report.mean_latency_seconds,
                report.p95_latency_seconds,
                report.peak_kv_reserved_bytes / 1e9,
                report.tokens_per_second_per_usd,
            )
    return [table]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
