"""Offline serving throughput: policy x system queue-drain comparison.

Unlike the figure harnesses, which measure fixed ``(batch, seq_len)``
points, this experiment drains a seeded heterogeneous request queue (the
Azure-derived Short/Medium/Long mix) through each system under the three
scheduling policies and reports sustained tokens/s, per-request latency,
and the Figure 16a-style tokens/s/$ -- the regime the paper's
cost-effectiveness argument actually targets.

Step-time grids are calibrated through :mod:`repro.calibration`: each
system's measured cells are pre-warmed from (and persisted to) a
fingerprint-keyed store, so a system is measured once ever -- across the
system x policy sweep, across experiments in one process, and across
re-runs of ``python -m repro.experiments.runner serving``.

Scenario knobs go beyond the offline drain: ``--arrival`` feeds the queue
through a Poisson / fixed-rate / trace-replay arrival process,
``--admission optimistic`` switches continuous batching to optimistic
admission with recompute-on-readmit preemption, ``--prefill-chunk``
interleaves chunked prefill with running decodes, ``--nodes N
--router rr|jsq|bestfit`` shards the queue across an N-node fleet of each
system (one cluster drain per policy, with fleet tokens/s/$ and a
per-node breakdown table), ``--fleet-symmetry auto|full|representative``
controls fleet folding (symmetric round-robin fleets simulate one
representative node per homogeneous group), ``--faults SPEC`` injects
seeded node
failures (spot preemption / crash / slowdown) into the drain, with
per-node migration and downtime accounting in the breakdown,
``--overload SPEC`` bounds admission (shed / retry-with-backoff / park,
with shed/retry/goodput accounting), ``--autoscale SPEC`` hands the
fleet to a reactive autoscaler whose scale decisions land in a fourth
scale-event table, and ``--kv-tiers SPEC --kv-policy SPEC`` mounts a
tiered KV hierarchy (HBM/DRAM/SSD stack with demotion/promotion billed
at tier bandwidths) on every node, with a per-tier traffic/hit-rate
table.
"""

from __future__ import annotations

import argparse

from repro.baselines.registry import build_inference_system
from repro.calibration import CalibrationStore, resolve_store
from repro.errors import ConfigurationError
from repro.experiments.harness import Table
from repro.models import get_model
from repro.serving import TraceReplay, default_policies, drain_queue, parse_arrival_spec
from repro.serving.autoscale import parse_autoscale_spec
from repro.serving.cluster import (
    FLEET_SYMMETRY_MODES,
    ClusterScheduler,
    build_fleet,
)
from repro.serving.faults import parse_fault_spec
from repro.serving.kvtiers import parse_kv_policy_spec, parse_kv_tiers_spec
from repro.serving.overload import parse_overload_spec
from repro.serving.policies import ADMISSION_MODES
from repro.serving.routers import parse_router_spec
from repro.serving.steptime import (
    DEFAULT_BATCH_GRID,
    DEFAULT_SEQ_GRID,
    CalibratedStepTime,
    parse_grid,
)
from repro.workloads import sample_request_classes

MODEL = "OPT-66B"
BATCH_SLOTS = 16
SEED = 7

FAST_SYSTEMS = ["FLEX(SSD)", "HILOS (8 SmartSSDs)"]
FULL_SYSTEMS = [
    "FLEX(SSD)",
    "FLEX(DRAM)",
    "DS+UVM(DRAM)",
    "HILOS (8 SmartSSDs)",
    "HILOS (16 SmartSSDs)",
]

FAST_REQUESTS = 64
FULL_REQUESTS = 256


def run(
    fast: bool = True,
    systems: list[str] | None = None,
    n_requests: int | None = None,
    seed: int = SEED,
    store: CalibrationStore | None = None,
    use_store: bool = True,
    batch_grid: tuple[int, ...] | None = None,
    seq_grid: tuple[int, ...] | None = None,
    symmetry: str = "auto",
    fleet_symmetry: str = "auto",
    admission: str = "reserve",
    arrival: str | None = None,
    prefill_chunk: int | None = None,
    nodes: int = 1,
    router: str = "rr",
    faults: str | None = None,
    overload: str | None = None,
    autoscale: str | None = None,
    kv_tiers: str | None = None,
    kv_policy: str | None = None,
) -> list[Table]:
    """Drain one seeded queue through every (system, policy) pair.

    ``store`` overrides the calibration store (``use_store=False`` disables
    persistence entirely -- every run then measures from scratch); the grid
    arguments override the default calibration grids.  ``symmetry`` selects
    the simulation substrate mode for calibration measurements ("auto"
    folds symmetric device arrays to representative devices), and
    ``fleet_symmetry`` the cluster drain's fleet-folding mode ("auto"
    simulates one representative node per homogeneous group when the
    fleet is symmetric and the router load-oblivious; "full" always
    simulates every node; "representative" demands folding and fails
    fast on ineligible configurations).  ``admission``
    picks the continuous-batching accounting, ``arrival`` is an arrival
    spec (``poisson:RATE[:SEED]``, ``rate:RATE``, ``trace:PATH``), and
    ``prefill_chunk`` enables chunked prefill at that many tokens.

    ``nodes`` > 1 turns every system row into an N-node fleet of that
    system draining the *same* queue through a
    :class:`~repro.serving.cluster.ClusterScheduler` under the ``router``
    placement policy (``rr`` | ``jsq`` | ``bestfit``); the report table
    then carries fleet-level tokens/s and tokens/s/$ and a third table
    breaks each drain down per node.  ``nodes=1`` is the unchanged legacy
    single-host sweep.  ``faults`` is a fault spec
    (``spot:MTBF:RECOVERY[:SEED]``, ``crash:TIME:NODE``,
    ``slow:TIME:DURATION:FACTOR:NODE``, comma-separated); any fault
    schedule routes the drain through the cluster path (even one node)
    and the per-node table reports migrations and downtime.

    ``kv_tiers`` is a tier-stack spec (``hbm:CAP,dram:CAP:BW,ssd:CAP:BW``)
    mounting a tiered KV hierarchy on every node, and ``kv_policy``
    (``lru`` | ``attention[:HOT]`` | ``static:ALPHA``) its
    demotion/placement policy (default LRU-by-request); tier stacks
    route the drain through the cluster path and add a per-tier
    traffic/hit-rate table.

    ``overload`` is an overload-control spec (``shed:QDEPTH[:TPS]``,
    ``retry:QDEPTH[:TPS[:ATTEMPTS[:SEED]]]``,
    ``park:QDEPTH[:TPS[:DEADLINE_S]]``; ``-`` leaves a bound unset) and
    ``autoscale`` an autoscale spec
    (``auto:MIN:MAX:TARGET_QDEPTH[:PROVISION_S[:SEED]]``); either routes
    the drain through the cluster path too.  Under autoscaling the fleet
    is built at ``max(nodes, MAX)`` size and the scale-event timeline
    becomes a fourth table.
    """
    if nodes < 1:
        raise ConfigurationError("a serving sweep needs at least one node")
    systems = systems or (FAST_SYSTEMS if fast else FULL_SYSTEMS)
    n_requests = n_requests or (FAST_REQUESTS if fast else FULL_REQUESTS)
    store = resolve_store(store, use_store)
    fault_schedule = parse_fault_spec(faults, seed=seed)
    overload_control = parse_overload_spec(overload, seed=seed)
    autoscale_policy = parse_autoscale_spec(autoscale, seed=seed)
    tier_stack = parse_kv_tiers_spec(kv_tiers) if kv_tiers else None
    tier_policy = parse_kv_policy_spec(kv_policy) if kv_policy else None
    if tier_policy is not None and tier_stack is None:
        raise ConfigurationError(
            "--kv-policy needs a tier stack to govern (--kv-tiers)"
        )
    fleet_nodes = nodes
    if autoscale_policy is not None:
        fleet_nodes = max(nodes, autoscale_policy.max_nodes)
    fleet_mode = (
        fleet_nodes > 1
        or fault_schedule is not None
        or overload_control is not None
        or autoscale_policy is not None
        or tier_stack is not None
    )
    arrivals = parse_arrival_spec(arrival, seed=seed)
    if isinstance(arrivals, TraceReplay) and arrivals.classes is not None:
        # A fully-specified trace (classes on every line) *is* the
        # workload: replay exactly what was recorded.
        queue = arrivals.request_classes()
        n_requests = len(queue)
    else:
        if isinstance(arrivals, TraceReplay) and len(arrivals.times) < n_requests:
            # Fail before any calibration work, not deep in the first drain.
            raise ConfigurationError(
                f"arrival trace holds {len(arrivals.times)} timestamps but "
                f"the queue has {n_requests} requests; shrink the queue "
                "(--requests) or record request classes in the trace"
            )
        queue = sample_request_classes(n_requests, seed=seed)
    model = get_model(MODEL)
    scenario = "offline (all at t=0)" if arrivals is None else arrival
    fleet_suffix = (
        f", {fleet_nodes}-node fleets via {router}" if fleet_nodes > 1 else ""
    )
    if fault_schedule is not None:
        fleet_suffix += f", faults: {faults}"
    if overload_control is not None:
        fleet_suffix += f", overload: {overload}"
    if autoscale_policy is not None:
        fleet_suffix += f", autoscale: {autoscale}"
    if tier_stack is not None:
        fleet_suffix += f", kv tiers: {kv_tiers} ({kv_policy or 'lru'})"
    table = Table(
        title=f"Serving throughput ({MODEL}, {n_requests} mixed requests, "
        f"arrivals: {scenario}{fleet_suffix})",
        columns=[
            "system",
            "policy",
            "completed",
            "shed",
            "retries",
            "tokens_per_s",
            "goodput_tok_s",
            "mean_latency_s",
            "p95_latency_s",
            "peak_kv_gb",
            "preemptions",
            "wasted_prefill",
            "tokens_per_s_per_usd",
        ],
        notes="seeded Azure Short/Medium/Long mix; continuous batching is "
        "capacity-aware against the system's KV cache home"
        + (
            "; optimistic admission preempts youngest-first on overflow"
            if admission == "optimistic"
            else ""
        )
        + (
            f"; prefill chunked at {prefill_chunk} tokens"
            if prefill_chunk
            else ""
        ),
    )
    calibration = Table(
        title="Calibration cache utilisation",
        columns=[
            "system",
            "fingerprint",
            "prewarmed_cells",
            "cells_cached",
            "new_measurements",
            "clamped_queries",
        ],
        notes="new_measurements is zero when the store already holds the "
        "system's grid (warm re-run)",
    )
    per_node = (
        Table(
            title=f"Per-node breakdown ({fleet_nodes}-node fleets, "
            f"router: {router})",
            columns=[
                "system",
                "policy",
                "node",
                "requests",
                "completed",
                "shed",
                "retries",
                "tokens_per_s",
                "preemptions",
                "wasted_prefill",
                "peak_kv_gb",
                "migrations",
                "downtime_s",
            ],
            notes="per-node tokens/s are over the fleet makespan and sum to "
            "the fleet rate; migrations/downtime are zero on fault-free "
            "drains (see --faults); shed/retries are zero without "
            "--overload admission bounds",
        )
        if fleet_mode
        else None
    )
    tier_table = (
        Table(
            title=f"KV tier usage (stack: {kv_tiers}, "
            f"policy: {kv_policy or 'lru'})",
            columns=[
                "system",
                "policy",
                "tier",
                "capacity_gb",
                "peak_gb",
                "demoted_gb",
                "promoted_gb",
                "decode_read_gb",
                "hit_rate",
            ],
            notes="fleet-merged per-tier traffic; hit_rate is the share of "
            "decode KV reads served by this tier (top-tier reads are the "
            "hits); demotion/promotion bytes were billed through the "
            "simulation at the tier's bandwidth",
        )
        if tier_stack is not None
        else None
    )
    scale_table = (
        Table(
            title=f"Autoscaler scale events (policy: {autoscale})",
            columns=[
                "system",
                "policy",
                "time_s",
                "action",
                "node",
                "reason",
                "queue_depth",
                "active_nodes",
            ],
            notes="every autoscaler decision across the sweep's drains; "
            "provisioning rides the fault layer's RECOVERING lifecycle "
            "and offline time is billed at zero",
        )
        if autoscale_policy is not None
        else None
    )
    clamped_any = False
    for label in systems:
        if fleet_mode:
            fleet = build_fleet(
                model,
                [label] * fleet_nodes,
                store=store,
                batch_grid=batch_grid,
                seq_grid=seq_grid,
                symmetry=symmetry,
                prefill_chunk_tokens=prefill_chunk,
                kv_tiers=tier_stack,
                kv_policy=tier_policy,
            )
            step_time = fleet[0].step_time  # shared across the symmetric fleet
            prewarmed = step_time.prewarm()
            reports = [
                ClusterScheduler(
                    fleet,
                    policy,
                    router=parse_router_spec(router),
                    faults=fault_schedule,
                    overload=overload_control,
                    autoscale=autoscale_policy,
                    fleet_symmetry=fleet_symmetry,
                ).drain(list(queue), arrivals=arrivals)
                for policy in default_policies(BATCH_SLOTS, admission=admission)
            ]
            step_time.flush()
        else:
            system = build_inference_system(label, model)
            system.symmetry = symmetry
            step_time = CalibratedStepTime(
                system,
                batch_grid=batch_grid or DEFAULT_BATCH_GRID,
                seq_grid=seq_grid or DEFAULT_SEQ_GRID,
                store=store,
            )
            prewarmed = step_time.prewarm()
            reports = drain_queue(
                system,
                default_policies(BATCH_SLOTS, admission=admission),
                queue,
                step_time=step_time,
                arrivals=arrivals,
                prefill_chunk_tokens=prefill_chunk,
            )
        for report in reports:
            table.add_row(
                report.system if fleet_mode else label,
                report.policy,
                report.completed,
                report.shed_requests,
                report.retry_attempts,
                report.tokens_per_second,
                report.goodput_tokens_per_s,
                report.mean_latency_seconds,
                report.p95_latency_seconds,
                report.peak_kv_reserved_bytes / 1e9,
                report.preemptions,
                report.wasted_prefill_tokens,
                report.tokens_per_second_per_usd,
            )
            clamped_any = clamped_any or bool(report.step_time_notes)
            if fleet_mode:
                for breakdown in report.node_reports:
                    per_node.add_row(
                        report.system,
                        report.policy,
                        breakdown.node,
                        breakdown.n_requests,
                        breakdown.completed,
                        breakdown.shed_requests,
                        breakdown.retry_attempts,
                        breakdown.tokens_per_second,
                        breakdown.preemptions,
                        breakdown.wasted_prefill_tokens,
                        breakdown.peak_kv_reserved_bytes / 1e9,
                        breakdown.migrations,
                        breakdown.downtime_seconds,
                    )
            if tier_table is not None:
                for tier in report.kv_tiers:
                    tier_table.add_row(
                        report.system,
                        report.policy,
                        tier.tier,
                        tier.capacity_bytes / 1e9,
                        tier.peak_occupied_bytes / 1e9,
                        tier.demoted_bytes / 1e9,
                        tier.promoted_bytes / 1e9,
                        tier.decode_read_bytes / 1e9,
                        tier.hit_rate,
                    )
            if scale_table is not None:
                for event in report.scale_events:
                    scale_table.add_row(
                        report.system,
                        report.policy,
                        event.time,
                        event.action,
                        event.node,
                        event.reason,
                        event.queue_depth,
                        event.active_nodes,
                    )
        calibration.add_row(
            label,
            step_time.fingerprint[:16],
            prewarmed,
            step_time.calibration_points,
            step_time.measurement_count,
            step_time.grid_clamp_summary().get("clamped_queries", 0),
        )
    if clamped_any:
        calibration.notes += (
            "; some queries fell outside the calibration grid and were "
            "clamped to its edge -- consider --batch-grid/--seq-grid"
        )
    tables = [table, calibration]
    if fleet_mode:
        tables.append(per_node)
    if tier_table is not None:
        tables.append(tier_table)
    if scale_table is not None:
        tables.append(scale_table)
    return tables


def add_calibration_cli(parser: argparse.ArgumentParser) -> None:
    """Install the calibration knobs shared by this CLI and the runner's."""
    parser.add_argument(
        "--batch-grid", type=str, default=None,
        help="comma-separated calibration batch sizes (default "
        + ",".join(map(str, DEFAULT_BATCH_GRID)) + ")",
    )
    parser.add_argument(
        "--seq-grid", type=str, default=None,
        help="comma-separated calibration context lengths (default "
        + ",".join(map(str, DEFAULT_SEQ_GRID)) + ")",
    )
    parser.add_argument(
        "--calibration-dir", type=str, default=None,
        help="calibration store directory (default: $REPRO_CALIBRATION_DIR "
        "or ~/.cache/repro/calibration)",
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help="disable the persistent calibration cache (measure from scratch)",
    )


def add_serving_cli(parser: argparse.ArgumentParser) -> None:
    """Install the serving-scenario knobs shared by this CLI and the runner's."""
    parser.add_argument(
        "--admission", choices=ADMISSION_MODES, default=None,
        help="continuous-batching accounting: reserve final-context KV up "
        "front (default) or admit optimistically with youngest-first "
        "recompute-on-readmit preemption",
    )
    parser.add_argument(
        "--arrival", type=str, default=None, metavar="SPEC",
        help="arrival process: poisson:RATE[:SEED], burst:RATE:SIZE[:SEED] "
        "(Poisson-timed fixed-size bursts), rate:RATE, trace:PATH "
        "(a JSONL trace naming a request class on every line replaces the "
        "sampled workload), or offline (default: all requests at t=0)",
    )
    parser.add_argument(
        "--prefill-chunk", type=int, default=None, metavar="TOKENS",
        help="chunk prefill at TOKENS per scheduling round so admissions "
        "stop stalling running decodes (default: whole-prompt prefill)",
    )
    parser.add_argument(
        "--nodes", type=int, default=None, metavar="N",
        help="drain the queue across an N-node fleet of each system "
        "(cluster scheduling; default: a single node)",
    )
    parser.add_argument(
        "--fleet-symmetry", choices=FLEET_SYMMETRY_MODES, default=None,
        help="fleet-folding mode for cluster drains: auto (fold symmetric "
        "fleets under load-oblivious routers to one representative node "
        "per homogeneous group; the default), full (always simulate every "
        "node), representative (require folding, fail fast when "
        "ineligible); only meaningful with --nodes > 1",
    )
    parser.add_argument(
        "--router", type=str, default=None, metavar="SPEC",
        help="fleet placement policy: rr (round-robin), jsq (join the "
        "shortest queue by outstanding tokens), bestfit (KV-headroom "
        "best fit), wrr:W0,W1,... (weighted round-robin, one integer "
        "weight per node); only meaningful with --nodes > 1",
    )
    parser.add_argument(
        "--faults", type=str, default=None, metavar="SPEC",
        help="fault injection: comma-separated spot:MTBF:RECOVERY[:SEED] "
        "(seeded spot-preemption streams), crash:TIME:NODE (permanent "
        "death), slow:TIME:DURATION:FACTOR:NODE (transient slowdown); "
        "dead nodes migrate their requests recompute-on-migrate and the "
        "per-node table reports migrations and downtime (default: none)",
    )
    parser.add_argument(
        "--overload", type=str, default=None, metavar="SPEC",
        help="admission control: shed:QDEPTH[:TPS] (drop over-limit "
        "arrivals), retry:QDEPTH[:TPS[:ATTEMPTS[:SEED]]] (seeded "
        "exponential backoff, shed on exhaustion), "
        "park:QDEPTH[:TPS[:DEADLINE_S]] (wait for capacity, shed past "
        "the deadline); '-' leaves a bound unset (default: none)",
    )
    parser.add_argument(
        "--kv-tiers", type=str, default=None, metavar="SPEC",
        help="tiered KV hierarchy on every node: NAME:CAP for the top tier "
        "then NAME:CAP:BW per lower tier, comma-separated "
        "(hbm:40g,dram:256g:50g,ssd:2t:8g; capacities/bandwidths take "
        "k/m/g/t suffixes); admission budgets become the stack total and "
        "KV movement is billed at tier bandwidths (default: flat budget)",
    )
    parser.add_argument(
        "--kv-policy", type=str, default=None, metavar="SPEC",
        help="tier demotion/placement policy: lru (demote "
        "least-recently-admitted requests whole; default), "
        "attention[:HOT_FRACTION] (keep the attention-hot KV prefix in "
        "the top tier, demote the cold tail), static:ALPHA (place a "
        "fixed ALPHA share below the top tier at admission, no "
        "promotion); needs --kv-tiers",
    )
    parser.add_argument(
        "--autoscale", type=str, default=None, metavar="SPEC",
        help="reactive fleet autoscaling: "
        "auto:MIN:MAX:TARGET_QDEPTH[:PROVISION_S[:SEED]]; the fleet is "
        "built at max(--nodes, MAX) size, nodes past MIN start offline "
        "and unbilled, and scale decisions appear in a fourth table "
        "(default: none)",
    )


def serving_kwargs(parser: argparse.ArgumentParser, args: argparse.Namespace) -> dict:
    """Validate the shared serving-scenario flags into ``run()`` kwargs."""
    kwargs: dict = {}
    if getattr(args, "admission", None) is not None:
        kwargs["admission"] = args.admission
    if getattr(args, "arrival", None) is not None:
        try:
            if args.arrival.startswith("trace:"):
                # Defer the (possibly huge) trace read to run(); only check
                # the schedule file is actually there.
                import os

                path = args.arrival.partition(":")[2]
                if not path or not os.path.exists(path):
                    parser.error(f"arrival trace not found: {path!r}")
            else:
                parse_arrival_spec(args.arrival)
        except ConfigurationError as exc:
            parser.error(str(exc))
        kwargs["arrival"] = args.arrival
    if getattr(args, "prefill_chunk", None) is not None:
        if args.prefill_chunk < 1:
            parser.error("--prefill-chunk must be at least 1 token")
        kwargs["prefill_chunk"] = args.prefill_chunk
    if getattr(args, "nodes", None) is not None:
        if args.nodes < 1:
            parser.error("--nodes must be at least 1")
        kwargs["nodes"] = args.nodes
    if getattr(args, "fleet_symmetry", None) is not None:
        kwargs["fleet_symmetry"] = args.fleet_symmetry
    autoscale_policy = None
    if getattr(args, "autoscale", None) is not None:
        try:
            autoscale_policy = parse_autoscale_spec(args.autoscale)
        except ConfigurationError as exc:
            parser.error(str(exc))
        if autoscale_policy is not None:
            kwargs["autoscale"] = args.autoscale
    if getattr(args, "router", None) is not None:
        # An autoscaled drain is a fleet even at --nodes 1 (the fleet is
        # built at max_nodes size), so a router is meaningful there too.
        if getattr(args, "nodes", None) in (None, 1) and (
            autoscale_policy is None or autoscale_policy.max_nodes <= 1
        ):
            parser.error("--router requires --nodes > 1 (a fleet to route over)")
        try:
            parse_router_spec(args.router)
        except ConfigurationError as exc:
            parser.error(str(exc))
        kwargs["router"] = args.router
    if getattr(args, "kv_policy", None) is not None and (
        getattr(args, "kv_tiers", None) is None
    ):
        parser.error("--kv-policy needs a tier stack to govern (--kv-tiers)")
    if getattr(args, "kv_tiers", None) is not None:
        try:
            parse_kv_tiers_spec(args.kv_tiers)
            if getattr(args, "kv_policy", None) is not None:
                parse_kv_policy_spec(args.kv_policy)
        except ConfigurationError as exc:
            parser.error(str(exc))
        kwargs["kv_tiers"] = args.kv_tiers
        if getattr(args, "kv_policy", None) is not None:
            kwargs["kv_policy"] = args.kv_policy
    if getattr(args, "faults", None) is not None:
        try:
            schedule = parse_fault_spec(args.faults)
            if schedule is not None:
                n_nodes = getattr(args, "nodes", None) or 1
                if autoscale_policy is not None:
                    n_nodes = max(n_nodes, autoscale_policy.max_nodes)
                schedule.validate_for(n_nodes)
        except ConfigurationError as exc:
            parser.error(str(exc))
        kwargs["faults"] = args.faults
    if getattr(args, "overload", None) is not None:
        try:
            control = parse_overload_spec(args.overload)
        except ConfigurationError as exc:
            parser.error(str(exc))
        if control is not None:
            kwargs["overload"] = args.overload
    return kwargs


def calibration_kwargs(parser: argparse.ArgumentParser, args: argparse.Namespace) -> dict:
    """Validate the shared calibration flags into ``run()`` keyword args.

    Only flags the user actually passed appear in the result, so callers
    can forward it to any ``run()`` that accepts a subset.  Conflicts and
    malformed grids become argparse usage errors.
    """
    if args.no_store and args.calibration_dir is not None:
        parser.error("--no-store conflicts with --calibration-dir")
    kwargs: dict = {}
    try:
        if args.batch_grid is not None:
            kwargs["batch_grid"] = parse_grid(args.batch_grid, "--batch-grid")
        if args.seq_grid is not None:
            kwargs["seq_grid"] = parse_grid(args.seq_grid, "--seq-grid")
    except ConfigurationError as exc:
        parser.error(str(exc))
    if args.calibration_dir is not None:
        kwargs["store"] = CalibrationStore(args.calibration_dir)
    if args.no_store:
        kwargs["use_store"] = False
    return kwargs


def main(argv: list[str] | None = None) -> int:
    """Standalone CLI mirroring the runner's serving knobs."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale parameters")
    parser.add_argument("--requests", type=int, default=None, help="queue length")
    parser.add_argument("--seed", type=int, default=SEED, help="queue sampling seed")
    add_calibration_cli(parser)
    add_serving_cli(parser)
    args = parser.parse_args(argv)
    from repro.experiments.harness import format_tables

    tables = run(
        fast=not args.full,
        n_requests=args.requests,
        seed=args.seed,
        **calibration_kwargs(parser, args),
        **serving_kwargs(parser, args),
    )
    print(format_tables(tables))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
