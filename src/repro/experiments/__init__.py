"""Experiment harnesses: one module per paper table/figure.

Each module exposes ``run(fast: bool = True) -> list[Table]`` producing the
rows/series the paper reports, and can be executed directly
(``python -m repro.experiments.fig10_throughput``).  ``fast`` trims contexts
and repetition so the pytest benchmarks finish quickly; ``--full`` via
:mod:`repro.experiments.runner` uses paper-scale parameters.
"""

from repro.experiments.harness import Table, format_tables, normalize

__all__ = ["Table", "format_tables", "normalize"]
