"""Table 3: resource utilization, peak performance, and power per build.

The resource/power rows come from the anchored Table 3 models; the peak
GFLOPS column is *predicted* by the DRAM-roofline block-timing model and
printed next to the paper's measured value to show the calibration error.
Also reports the Section 6.2 deployment figures (16 accelerators ~ 258 W,
296.05 MHz clock) and the softmax-dominance trend of Section 7.2.
"""

from __future__ import annotations

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.pipeline import peak_gflops
from repro.accelerator.power import accelerator_power_w, deployment_power_w
from repro.accelerator.resources import estimate_resources, max_feasible_d_group
from repro.accelerator.units import softmax_fraction
from repro.experiments.harness import Table

PAPER_PEAK_GFLOPS = {1: 11.9, 4: 46.8, 5: 56.3}


def resource_table() -> Table:
    """The Table 3 rows: utilization, peak perf (model vs paper), power."""
    table = Table(
        title="Table 3 resource utilization and achieved performance",
        columns=[
            "d_group",
            "LUT_pct",
            "FF_pct",
            "BRAM_pct",
            "URAM_pct",
            "DSP_pct",
            "peak_gflops_model",
            "peak_gflops_paper",
            "power_w",
            "softmax_frac",
        ],
    )
    for d_group in (1, 4, 5):
        config = AcceleratorConfig(d_group=d_group)
        res = estimate_resources(config)
        table.add_row(
            d_group,
            res.lut,
            res.ff,
            res.bram,
            res.uram,
            res.dsp,
            peak_gflops(config),
            PAPER_PEAK_GFLOPS[d_group],
            accelerator_power_w(config),
            softmax_fraction(config),
        )
    return table


def deployment_table() -> Table:
    """Section 6.2 deployment-level figures."""
    table = Table(
        title="Deployment figures (Section 6.2)",
        columns=["metric", "value"],
    )
    table.add_row("clock_mhz", AcceleratorConfig().clock_hz / 1e6)
    table.add_row("full_16_device_power_w", deployment_power_w(16, d_group=5))
    table.add_row("max_feasible_d_group", max_feasible_d_group())
    return table


def run(fast: bool = True) -> list[Table]:
    """Table 3 plus the deployment summary."""
    return [resource_table(), deployment_table()]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
