"""Figure 15: ablation of the three HILOS optimizations.

Configurations (all normalized to ``FLEX(SSD)``):

* ``ANS``       -- attention near storage alone (naive per-entry writeback);
* ``ANS+WB``    -- plus delayed KV cache writeback (up to ~1.3x over ANS);
* ``ANS+X``     -- plus cooperative X-cache (up to ~1.6x over ANS);
* ``ANS+WB+X``  -- the full system.

MoE models (GLaM-143B) see smaller relative gains -- their KV-to-weight
ratio is lower -- while longer contexts and bigger batches amplify the
benefits.

An extra ``ANS+WB+X (slow dev0)`` row degrades one SmartSSD's flash read
bandwidth to half: striping stays uniform, so the slow device becomes the
straggler every layer waits on.  The perturbed array is asymmetric, which
makes the simulation substrate fall back from representative-device folding
to the full-array path automatically (``symmetry="auto"``).
"""

from __future__ import annotations

from repro.baselines.flexgen import FlexGenSSD
from repro.core.config import HilosConfig
from repro.core.runtime import HilosSystem
from repro.experiments.harness import Table
from repro.models import get_model
from repro.sim.topology import DevicePerturbation, HardwareConfig, host_pcie_for_gpu

N_DEVICES = 16

#: One device at half flash-read bandwidth: the straggler ablation.
SLOW_DEVICE_SCALE = 0.5


def _degraded_hardware() -> HardwareConfig:
    """The evaluated 16-device array with SmartSSD 0 degraded."""
    return HardwareConfig(
        gpu="A100",
        n_conventional_ssds=0,
        n_smartssds=N_DEVICES,
        host_pcie_bandwidth=host_pcie_for_gpu("A100"),
        smartssd_perturbations=(
            DevicePerturbation(0, flash_read_scale=SLOW_DEVICE_SCALE),
        ),
    )

ABLATIONS = [
    ("ANS", HilosConfig(n_devices=N_DEVICES, use_xcache=False, use_delayed_writeback=False)),
    ("ANS+WB", HilosConfig(n_devices=N_DEVICES, use_xcache=False, use_delayed_writeback=True)),
    ("ANS+X", HilosConfig(n_devices=N_DEVICES, use_xcache=True, use_delayed_writeback=False)),
    ("ANS+WB+X", HilosConfig(n_devices=N_DEVICES, use_xcache=True, use_delayed_writeback=True)),
]

FAST_POINTS = [("OPT-30B", 16, 16384), ("OPT-30B", 16, 32768)]
FULL_POINTS = [
    (model, batch, seq)
    for model in ("OPT-30B", "OPT-66B", "GLaM-143B")
    for batch in (16, 32)
    for seq in (16384, 32768, 65536)
]


def run(fast: bool = True, symmetry: str = "auto") -> list[Table]:
    """Normalized throughput for each ablation configuration.

    ``symmetry`` threads through to the simulation substrate; the
    slow-device row is asymmetric and always takes the full-array path.
    """
    points = FAST_POINTS if fast else FULL_POINTS
    table = Table(
        title="Fig 15 ablation study (normalized to FLEX(SSD))",
        columns=["model", "batch", "seq_len", "config", "tokens_per_s", "normalized"],
        notes="(slow dev0): one SmartSSD at half flash-read bandwidth "
        "(asymmetric array, full-array simulation path)",
    )
    for model_name, batch, seq_len in points:
        model = get_model(model_name)
        flex_system = FlexGenSSD(model)
        flex_system.symmetry = symmetry
        flex = flex_system.measure(batch, seq_len, n_steps=1, warmup_steps=1)
        table.add_row(
            model_name, batch, seq_len, "FLEX(SSD)", flex.tokens_per_second, 1.0
        )
        for label, config in ABLATIONS:
            system = HilosSystem(model, config)
            system.symmetry = symmetry
            result = system.measure(batch, seq_len, n_steps=1, warmup_steps=1)
            table.add_row(
                model_name,
                batch,
                seq_len,
                label,
                result.tokens_per_second,
                result.tokens_per_second / flex.tokens_per_second,
            )
        straggler = HilosSystem(
            model, HilosConfig(n_devices=N_DEVICES), hardware=_degraded_hardware()
        )
        straggler.symmetry = symmetry if symmetry != "representative" else "auto"
        result = straggler.measure(batch, seq_len, n_steps=1, warmup_steps=1)
        table.add_row(
            model_name,
            batch,
            seq_len,
            "ANS+WB+X (slow dev0)",
            result.tokens_per_second,
            result.tokens_per_second / flex.tokens_per_second,
        )
    return [table]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
