"""Figure 15: ablation of the three HILOS optimizations.

Configurations (all normalized to ``FLEX(SSD)``):

* ``ANS``       -- attention near storage alone (naive per-entry writeback);
* ``ANS+WB``    -- plus delayed KV cache writeback (up to ~1.3x over ANS);
* ``ANS+X``     -- plus cooperative X-cache (up to ~1.6x over ANS);
* ``ANS+WB+X``  -- the full system.

MoE models (GLaM-143B) see smaller relative gains -- their KV-to-weight
ratio is lower -- while longer contexts and bigger batches amplify the
benefits.

An extra ``ANS+WB+X (slow dev0)`` row degrades one SmartSSD's flash read
bandwidth to half: striping stays uniform, so the slow device becomes the
straggler every layer waits on.  The perturbed array is asymmetric, which
makes the simulation substrate fall back from representative-device folding
to the full-array path automatically (``symmetry="auto"``).

Every configuration routes through a
:class:`~repro.calibration.figures.FigurePointCache` (each ablation -- and
the perturbed straggler array -- has its own fingerprint, since the
fingerprint hashes the full hardware config), so warm re-runs of the sweep
measure **nothing**.
"""

from __future__ import annotations

from repro.baselines.flexgen import FlexGenSSD
from repro.calibration import CalibrationStore, resolve_store
from repro.calibration.figures import FigurePointCache
from repro.core.config import HilosConfig
from repro.core.runtime import HilosSystem
from repro.experiments.harness import Table
from repro.models import get_model
from repro.sim.topology import DevicePerturbation, HardwareConfig, host_pcie_for_gpu

N_DEVICES = 16

#: One device at half flash-read bandwidth: the straggler ablation.
SLOW_DEVICE_SCALE = 0.5


def _degraded_hardware() -> HardwareConfig:
    """The evaluated 16-device array with SmartSSD 0 degraded."""
    return HardwareConfig(
        gpu="A100",
        n_conventional_ssds=0,
        n_smartssds=N_DEVICES,
        host_pcie_bandwidth=host_pcie_for_gpu("A100"),
        smartssd_perturbations=(
            DevicePerturbation(0, flash_read_scale=SLOW_DEVICE_SCALE),
        ),
    )

ABLATIONS = [
    ("ANS", HilosConfig(n_devices=N_DEVICES, use_xcache=False, use_delayed_writeback=False)),
    ("ANS+WB", HilosConfig(n_devices=N_DEVICES, use_xcache=False, use_delayed_writeback=True)),
    ("ANS+X", HilosConfig(n_devices=N_DEVICES, use_xcache=True, use_delayed_writeback=False)),
    ("ANS+WB+X", HilosConfig(n_devices=N_DEVICES, use_xcache=True, use_delayed_writeback=True)),
]

FAST_POINTS = [("OPT-30B", 16, 16384), ("OPT-30B", 16, 32768)]
FULL_POINTS = [
    (model, batch, seq)
    for model in ("OPT-30B", "OPT-66B", "GLaM-143B")
    for batch in (16, 32)
    for seq in (16384, 32768, 65536)
]


def run(
    fast: bool = True,
    symmetry: str = "auto",
    store: CalibrationStore | None = None,
    use_store: bool = True,
) -> list[Table]:
    """Normalized throughput for each ablation configuration.

    ``symmetry`` threads through to the simulation substrate; the
    slow-device row is asymmetric and always takes the full-array path.
    ``store`` overrides the calibration store; ``use_store=False`` disables
    persistence entirely (every run then measures from scratch).
    """
    points = FAST_POINTS if fast else FULL_POINTS
    store = resolve_store(store, use_store)
    table = Table(
        title="Fig 15 ablation study (normalized to FLEX(SSD))",
        columns=["model", "batch", "seq_len", "config", "tokens_per_s", "normalized"],
        notes="(slow dev0): one SmartSSD at half flash-read bandwidth "
        "(asymmetric array, full-array simulation path)",
    )
    grids_by_model: dict[str, tuple[set, set]] = {}
    for model_name, batch, seq_len in points:
        batches, seqs = grids_by_model.setdefault(model_name, (set(), set()))
        batches.add(batch)
        seqs.add(seq_len)
    new_measurements = 0
    for model_name, (batches, seqs) in grids_by_model.items():
        model = get_model(model_name)
        # One system instance (and one cache) per configuration per model,
        # hoisted out of the point loop so fingerprints cover the sweep.
        flex_system = FlexGenSSD(model)
        flex_system.symmetry = symmetry
        systems = [("FLEX(SSD)", flex_system)]
        for label, config in ABLATIONS:
            system = HilosSystem(model, config)
            system.symmetry = symmetry
            systems.append((label, system))
        straggler = HilosSystem(
            model, HilosConfig(n_devices=N_DEVICES), hardware=_degraded_hardware()
        )
        straggler.symmetry = symmetry if symmetry != "representative" else "auto"
        systems.append(("ANS+WB+X (slow dev0)", straggler))
        caches = {
            label: FigurePointCache(
                system,
                batch_grid=tuple(sorted(batches)),
                seq_grid=tuple(sorted(seqs)),
                store=store,
            )
            for label, system in systems
        }
        for point_model, batch, seq_len in points:
            if point_model != model_name:
                continue
            flex = caches["FLEX(SSD)"].measure(batch, seq_len)
            table.add_row(
                model_name, batch, seq_len, "FLEX(SSD)",
                flex.tokens_per_second, 1.0,
            )
            for label, _ in systems[1:]:
                point = caches[label].measure(batch, seq_len)
                table.add_row(
                    model_name,
                    batch,
                    seq_len,
                    label,
                    point.tokens_per_second,
                    point.tokens_per_second / flex.tokens_per_second,
                )
        for cache in caches.values():
            cache.flush()
            new_measurements += cache.measurement_count
    table.notes += (
        f"; {new_measurements} new measurements this run "
        "(zero on a warm calibration store)"
    )
    return [table]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
