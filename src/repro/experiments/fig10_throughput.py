"""Figure 10: the headline decoding-throughput comparison.

Seven systems across OPT-30B/66B/175B and 32K/64K/128K contexts at batch
16, normalized to ``FLEX(SSD)``.  The paper's shape targets:

* ``FLEX(16 PCIe 3.0 SSDs)`` lands at 0.64-0.94x of FLEX(SSD);
* ``DS+UVM(DRAM)`` is >4x slower than FLEX(DRAM);
* HILOS(4) beats FLEX(DRAM) by 1.10-1.36x; HILOS(16) by 1.88-2.49x;
* where FLEX(DRAM) OOMs, HILOS(16) reaches 5.3-7.9x over FLEX(SSD).

Measurement points route through the :mod:`repro.calibration` store (one
:class:`~repro.calibration.figures.FigurePointCache` per system and model):
cold runs simulate each point once and persist its step time + phase
breakdown; warm re-runs perform **zero** ``measure()`` calls, mirroring the
serving experiment.  ``symmetry`` threads through to the simulation
substrate (``"auto"`` folds the homogeneous device arrays to representative
devices; ``"full"`` forces the reference full-array path).
"""

from __future__ import annotations

from repro.baselines.registry import SYSTEM_BUILDERS, build_inference_system
from repro.calibration import CalibrationStore, resolve_store
from repro.calibration.figures import FigurePointCache
from repro.experiments.harness import Table
from repro.models import get_model

BATCH = 16

FAST_POINTS = [("OPT-66B", 32768), ("OPT-66B", 65536)]
FULL_POINTS = [
    (model, seq)
    for model in ("OPT-30B", "OPT-66B", "OPT-175B")
    for seq in (32768, 65536, 131072)
]

SYSTEMS = list(SYSTEM_BUILDERS)


def run(
    fast: bool = True,
    systems: list[str] | None = None,
    symmetry: str = "auto",
    store: CalibrationStore | None = None,
    use_store: bool = True,
) -> list[Table]:
    """Throughput (absolute and normalized) for every (model, context).

    ``store`` overrides the calibration store; ``use_store=False`` disables
    persistence entirely (every run then measures from scratch).
    """
    points = FAST_POINTS if fast else FULL_POINTS
    systems = systems or SYSTEMS
    store = resolve_store(store, use_store)
    table = Table(
        title="Fig 10 decoding throughput (batch 16)",
        columns=["model", "seq_len", "system", "batch", "tokens_per_s", "norm_vs_flex_ssd"],
        notes="0 tokens/s with batch 0 marks the paper's CPU OOM cases",
    )
    calibration = Table(
        title="Fig 10 calibration cache utilisation",
        columns=["model", "system", "fingerprint", "cached_points", "new_measurements"],
        notes="new_measurements is zero when the store already holds every "
        "point (warm re-run)",
    )
    seqs_by_model: dict[str, list[int]] = {}
    for model_name, seq_len in points:
        seqs_by_model.setdefault(model_name, []).append(seq_len)
    for model_name, seqs in seqs_by_model.items():
        model = get_model(model_name)
        # One cache (and one system instance) per (system, model): the
        # fingerprint stays stable across the whole sweep and across runs.
        model_caches = {}
        for label in systems:
            system = build_inference_system(label, model)
            system.symmetry = symmetry
            model_caches[label] = FigurePointCache(
                system, batch_grid=(BATCH,), seq_grid=tuple(seqs), store=store
            )
        for seq_len in seqs:
            baseline_tput = None
            for label in systems:
                point = model_caches[label].measure(BATCH, seq_len)
                if label == "FLEX(SSD)":
                    baseline_tput = point.tokens_per_second
                norm = (
                    point.tokens_per_second / baseline_tput if baseline_tput else 0.0
                )
                table.add_row(
                    model_name,
                    seq_len,
                    label,
                    point.effective_batch,
                    point.tokens_per_second,
                    norm,
                )
        for label, cache in model_caches.items():
            cache.flush()
            calibration.add_row(
                model_name,
                label,
                cache.fingerprint[:16],
                cache.cached_points,
                cache.measurement_count,
            )
    return [table, calibration]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
