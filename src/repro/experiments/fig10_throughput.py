"""Figure 10: the headline decoding-throughput comparison.

Seven systems across OPT-30B/66B/175B and 32K/64K/128K contexts at batch
16, normalized to ``FLEX(SSD)``.  The paper's shape targets:

* ``FLEX(16 PCIe 3.0 SSDs)`` lands at 0.64-0.94x of FLEX(SSD);
* ``DS+UVM(DRAM)`` is >4x slower than FLEX(DRAM);
* HILOS(4) beats FLEX(DRAM) by 1.10-1.36x; HILOS(16) by 1.88-2.49x;
* where FLEX(DRAM) OOMs, HILOS(16) reaches 5.3-7.9x over FLEX(SSD).
"""

from __future__ import annotations

from repro.baselines.registry import SYSTEM_BUILDERS, build_inference_system
from repro.experiments.harness import Table
from repro.models import get_model

BATCH = 16

FAST_POINTS = [("OPT-66B", 32768), ("OPT-66B", 65536)]
FULL_POINTS = [
    (model, seq)
    for model in ("OPT-30B", "OPT-66B", "OPT-175B")
    for seq in (32768, 65536, 131072)
]

SYSTEMS = list(SYSTEM_BUILDERS)


def run(fast: bool = True, systems: list[str] | None = None) -> list[Table]:
    """Throughput (absolute and normalized) for every (model, context)."""
    points = FAST_POINTS if fast else FULL_POINTS
    systems = systems or SYSTEMS
    table = Table(
        title="Fig 10 decoding throughput (batch 16)",
        columns=["model", "seq_len", "system", "batch", "tokens_per_s", "norm_vs_flex_ssd"],
        notes="0 tokens/s with batch 0 marks the paper's CPU OOM cases",
    )
    for model_name, seq_len in points:
        model = get_model(model_name)
        baseline_tput = None
        for label in systems:
            system = build_inference_system(label, model)
            result = system.measure(BATCH, seq_len, n_steps=1, warmup_steps=1)
            if label == "FLEX(SSD)":
                baseline_tput = result.tokens_per_second
            norm = (
                result.tokens_per_second / baseline_tput
                if baseline_tput
                else 0.0
            )
            table.add_row(
                model_name,
                seq_len,
                label,
                result.effective_batch,
                result.tokens_per_second,
                norm,
            )
    return [table]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
