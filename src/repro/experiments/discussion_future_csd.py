"""Section 7 discussion experiments: future computational-storage designs.

Three studies from the paper's discussion:

1. **ISP equivalence (Fig. 18a/b):** a single envisioned ISP drive (16 GB/s
   internal flash, 68 GB/s LPDDR5X, PCIe 4.0 x4 external) should perform
   like the four-SmartSSD prototype, because the three governing bandwidths
   match.  We run HILOS end-to-end on both topologies.

2. **ASIC overhead (§7.1):** the OpenROAD/CACTI estimate of the d_group=1
   accelerator -- 0.47 mm^2 and 1.13 W at an 8 nm-class node -- plus scaled
   grouped-attention variants, checked against an SSD-controller budget.

3. **PCIe 5.0 scale-up (§7.2):** matching a 4x host interface by DSP
   parallelization would need >2,000 DSPs -- beyond the KU15P -- which is
   the paper's case for dedicated exponential-function units.
"""

from __future__ import annotations

from repro.accelerator.asic import estimate_asic, fits_ssd_controller_budget
from repro.accelerator.resources import dsp_count_for_throughput_scale
from repro.core.config import HilosConfig
from repro.core.runtime import HilosSystem
from repro.experiments.harness import Table
from repro.models import get_model
from repro.sim.isp import bandwidth_equivalence_summary, isp_hardware_config
from repro.units import GB

BATCH = 16
SEQ_LEN = 32768


def isp_equivalence_table(fast: bool = True) -> Table:
    """HILOS on 4 SmartSSDs vs HILOS on one envisioned ISP device."""
    model = get_model("OPT-66B" if fast else "OPT-66B")
    table = Table(
        title="Sec 7.1: one envisioned ISP vs four SmartSSDs (OPT-66B, 32K, batch 16)",
        columns=["platform", "devices", "tokens_per_s", "relative"],
        notes="the paper argues the two platforms should closely match",
    )
    smartssd = HilosSystem(model, HilosConfig(n_devices=4))
    base = smartssd.measure(BATCH, SEQ_LEN, n_steps=1, warmup_steps=1)
    isp = HilosSystem(
        model,
        HilosConfig(n_devices=1),
        hardware=isp_hardware_config(n_devices=1),
    )
    isp_result = isp.measure(BATCH, SEQ_LEN, n_steps=1, warmup_steps=1)
    table.add_row("NSP (4 SmartSSDs)", 4, base.tokens_per_second, 1.0)
    table.add_row(
        "ISP (envisioned)",
        1,
        isp_result.tokens_per_second,
        isp_result.tokens_per_second / base.tokens_per_second,
    )
    return table


def bandwidth_table() -> Table:
    """The three bandwidth pairs behind the equivalence argument."""
    table = Table(
        title="Sec 7.1: bandwidth equivalence (GB/s)",
        columns=["path", "one_isp", "four_smartssds"],
    )
    for path, (isp_bw, nsp_bw) in bandwidth_equivalence_summary().items():
        table.add_row(path, isp_bw / GB, nsp_bw / GB)
    return table


def asic_table() -> Table:
    """OpenROAD/CACTI ASIC estimates, anchored and scaled."""
    table = Table(
        title="Sec 7.1: ASIC accelerator estimates (8 nm-class, 300 MHz)",
        columns=["d_group", "area_mm2", "power_w", "fits_controller_budget"],
        notes="the d_group=1 anchor is the paper's published 0.47 mm^2 / 1.13 W",
    )
    for d_group in (1, 4, 5):
        estimate = estimate_asic(d_group)
        table.add_row(
            d_group,
            estimate.area_mm2,
            estimate.power_w,
            fits_ssd_controller_budget(estimate),
        )
    return table


def pcie5_table() -> Table:
    """DSP demand of scaling softmax throughput to a PCIe 5.0 feed."""
    table = Table(
        title="Sec 7.2: DSPs needed to scale softmax throughput",
        columns=["throughput_scale", "dsps_needed", "exceeds_ku15p"],
        notes="the KU15P provides 1,968 DSPs",
    )
    for scale in (1.0, 2.0, 4.0):
        dsps = dsp_count_for_throughput_scale(scale)
        table.add_row(scale, dsps, dsps > 1968)
    return table


def run(fast: bool = True) -> list[Table]:
    """All Section 7 discussion studies."""
    return [
        isp_equivalence_table(fast),
        bandwidth_table(),
        asic_table(),
        pcie5_table(),
    ]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
