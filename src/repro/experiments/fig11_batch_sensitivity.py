"""Figure 11: batch-size sensitivity on OPT-66B.

(a) Decoding throughput across batch sizes 1..16 at 32K/64K contexts:
``FLEX(DRAM)`` is capacity-capped at batch 2 (then OOM), ``FLEX(SSD)``
scales but stays KV-I/O-bound, HILOS scales through batch 16.

(b) Per-layer execution breakdown at batch 1/4/16: FLEX(DRAM) is dominated
by weight loading, FLEX(SSD) by KV-cache I/O, HILOS by neither.
"""

from __future__ import annotations

from repro.baselines.flexgen import FlexGenDRAM, FlexGenSSD
from repro.core.config import HilosConfig
from repro.core.runtime import HilosSystem
from repro.experiments.harness import Table
from repro.models import get_model
from repro.sim.metrics import HOST_COMPUTE, LOAD_KV, LOAD_WEIGHT, PAPER_PHASES, STORE_KV

MODEL = "OPT-66B"


def _systems(model):
    return [
        ("FLEX(SSD)", FlexGenSSD(model)),
        ("FLEX(DRAM)", FlexGenDRAM(model)),
        ("HILOS (4 SmartSSDs)", HilosSystem(model, HilosConfig(n_devices=4))),
        ("HILOS (16 SmartSSDs)", HilosSystem(model, HilosConfig(n_devices=16))),
    ]


def throughput_table(fast: bool = True) -> Table:
    """Figure 11(a): tokens/sec across batch sizes."""
    model = get_model(MODEL)
    contexts = [32768] if fast else [32768, 65536]
    batches = [1, 4, 16] if fast else [1, 2, 4, 8, 16]
    table = Table(
        title="Fig 11(a) batch-size sensitivity (OPT-66B)",
        columns=["seq_len", "batch", "system", "effective_batch", "tokens_per_s"],
        notes="effective_batch 0 marks CPU OOM",
    )
    for seq_len in contexts:
        for batch in batches:
            for label, system in _systems(model):
                result = system.measure(batch, seq_len, n_steps=1, warmup_steps=1)
                table.add_row(
                    seq_len, batch, label, result.effective_batch, result.tokens_per_second
                )
    return table


def breakdown_table(fast: bool = True) -> Table:
    """Figure 11(b): per-layer execution breakdown at 32K."""
    model = get_model(MODEL)
    batches = [1, 16] if fast else [1, 4, 16]
    table = Table(
        title="Fig 11(b) per-layer execution breakdown (OPT-66B, 32K)",
        columns=["system", "batch", "load_weight_pct", "load_kv_pct", "store_kv_pct", "host_compute_pct"],
    )
    model_systems = [
        ("FLEX(SSD)", lambda: FlexGenSSD(model)),
        ("FLEX(DRAM)", lambda: FlexGenDRAM(model)),
        ("HILOS (16 SSDs)", lambda: HilosSystem(model, HilosConfig(n_devices=16))),
    ]
    for label, make in model_systems:
        for batch in batches:
            result = make().measure(batch, 32768, n_steps=1, warmup_steps=1)
            if result.oom:
                table.add_row(label, batch, 0.0, 0.0, 0.0, 0.0)
                continue
            f = result.breakdown.fractions(PAPER_PHASES)
            table.add_row(
                label,
                batch,
                100 * f[LOAD_WEIGHT],
                100 * f[LOAD_KV],
                100 * f[STORE_KV],
                100 * f[HOST_COMPUTE],
            )
    return table


def run(fast: bool = True) -> list[Table]:
    """Both panels of Figure 11."""
    return [throughput_table(fast), breakdown_table(fast)]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
