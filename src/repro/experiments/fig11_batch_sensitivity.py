"""Figure 11: batch-size sensitivity on OPT-66B.

(a) Decoding throughput across batch sizes 1..16 at 32K/64K contexts:
``FLEX(DRAM)`` is capacity-capped at batch 2 (then OOM), ``FLEX(SSD)``
scales but stays KV-I/O-bound, HILOS scales through batch 16.

(b) Per-layer execution breakdown at batch 1/4/16: FLEX(DRAM) is dominated
by weight loading, FLEX(SSD) by KV-cache I/O, HILOS by neither.

Each system is constructed **once** per panel and swept through a
:class:`~repro.calibration.figures.FigurePointCache` (construction used to
happen inside the inner loop, which churned objects and would have made
calibration fingerprints instance-dependent had they ever captured state).
Cold runs persist every point's step time + phase breakdown to the
:mod:`repro.calibration` store; warm re-runs perform zero ``measure()``
calls, mirroring the serving experiment.
"""

from __future__ import annotations

from repro.baselines.flexgen import FlexGenDRAM, FlexGenSSD
from repro.calibration import CalibrationStore, resolve_store
from repro.calibration.figures import FigurePointCache
from repro.core.config import HilosConfig
from repro.core.runtime import HilosSystem
from repro.experiments.harness import Table
from repro.models import get_model
from repro.sim.metrics import HOST_COMPUTE, LOAD_KV, LOAD_WEIGHT, PAPER_PHASES, STORE_KV

MODEL = "OPT-66B"


def _systems(model, symmetry: str):
    systems = [
        ("FLEX(SSD)", FlexGenSSD(model)),
        ("FLEX(DRAM)", FlexGenDRAM(model)),
        ("HILOS (4 SmartSSDs)", HilosSystem(model, HilosConfig(n_devices=4))),
        ("HILOS (16 SmartSSDs)", HilosSystem(model, HilosConfig(n_devices=16))),
    ]
    for _, system in systems:
        system.symmetry = symmetry
    return systems


def throughput_table(
    fast: bool = True,
    symmetry: str = "auto",
    store: CalibrationStore | None = None,
    use_store: bool = True,
) -> Table:
    """Figure 11(a): tokens/sec across batch sizes."""
    store = resolve_store(store, use_store)
    model = get_model(MODEL)
    contexts = [32768] if fast else [32768, 65536]
    batches = [1, 4, 16] if fast else [1, 2, 4, 8, 16]
    table = Table(
        title="Fig 11(a) batch-size sensitivity (OPT-66B)",
        columns=["seq_len", "batch", "system", "effective_batch", "tokens_per_s"],
        notes="effective_batch 0 marks CPU OOM",
    )
    # Systems (and their point caches) are hoisted out of the sweep: one
    # instance each, so every point shares one calibration fingerprint.
    caches = [
        (label, FigurePointCache(system, tuple(batches), tuple(contexts), store=store))
        for label, system in _systems(model, symmetry)
    ]
    for seq_len in contexts:
        for batch in batches:
            for label, cache in caches:
                point = cache.measure(batch, seq_len)
                table.add_row(
                    seq_len, batch, label, point.effective_batch, point.tokens_per_second
                )
    for _, cache in caches:
        cache.flush()
    return table


def breakdown_table(
    fast: bool = True,
    symmetry: str = "auto",
    store: CalibrationStore | None = None,
    use_store: bool = True,
) -> Table:
    """Figure 11(b): per-layer execution breakdown at 32K."""
    store = resolve_store(store, use_store)
    model = get_model(MODEL)
    batches = [1, 16] if fast else [1, 4, 16]
    table = Table(
        title="Fig 11(b) per-layer execution breakdown (OPT-66B, 32K)",
        columns=["system", "batch", "load_weight_pct", "load_kv_pct", "store_kv_pct", "host_compute_pct"],
    )
    model_systems = [
        ("FLEX(SSD)", FlexGenSSD(model)),
        ("FLEX(DRAM)", FlexGenDRAM(model)),
        ("HILOS (16 SSDs)", HilosSystem(model, HilosConfig(n_devices=16))),
    ]
    for label, system in model_systems:
        system.symmetry = symmetry
        cache = FigurePointCache(system, tuple(batches), (32768,), store=store)
        for batch in batches:
            point = cache.measure(batch, 32768)
            if point.oom:
                table.add_row(label, batch, 0.0, 0.0, 0.0, 0.0)
                continue
            f = point.breakdown.fractions(PAPER_PHASES)
            table.add_row(
                label,
                batch,
                100 * f[LOAD_WEIGHT],
                100 * f[LOAD_KV],
                100 * f[STORE_KV],
                100 * f[HOST_COMPUTE],
            )
        cache.flush()
    return table


def run(
    fast: bool = True,
    symmetry: str = "auto",
    store: CalibrationStore | None = None,
    use_store: bool = True,
) -> list[Table]:
    """Both panels of Figure 11."""
    return [
        throughput_table(fast, symmetry=symmetry, store=store, use_store=use_store),
        breakdown_table(fast, symmetry=symmetry, store=store, use_store=use_store),
    ]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
