"""Figure 18(c): accuracy -- lossless HILOS vs lossy sparse attention.

On five synthetic long-context retrieval tasks (standing in for the five
LongBench datasets, see :mod:`repro.workloads.retrieval`), exact attention
(FlashAttention on the GPU and the HILOS blocked kernel) score identically,
while the InstAttention-style 1/8-compressed sparse retrieval loses several
F1 points -- the paper measures 3.52-5.73 points on Qwen2.5-32B.
"""

from __future__ import annotations

from repro.experiments.harness import Table
from repro.workloads.retrieval import (
    evaluate_kernel,
    flashattention_kernel,
    hilos_kernel,
    instattention_kernel,
    make_retrieval_suite,
)


def run(fast: bool = True) -> list[Table]:
    """F1 per task per kernel, plus the sparse degradation."""
    queries = 128 if fast else 256
    suite = make_retrieval_suite(n_queries=queries)
    table = Table(
        title="Fig 18(c) accuracy on synthetic long-context retrieval (F1)",
        columns=["task", "flashattention", "instattention_1_8", "hilos", "sparse_drop"],
        notes="HILOS must equal FlashAttention exactly; the sparse drop is the F1 loss",
    )
    for task in suite:
        flash = evaluate_kernel(task, flashattention_kernel)
        sparse = evaluate_kernel(task, instattention_kernel(1.0 / 8.0))
        hilos = evaluate_kernel(task, hilos_kernel)
        table.add_row(task.name, flash, sparse, hilos, flash - sparse)
    return [table]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
