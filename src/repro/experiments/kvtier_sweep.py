"""KV tier sweep: tokens/s/$ vs offload aggressiveness across tier sizes.

The fig13 sweep varies the X-cache ratio ``alpha`` inside one step-time
measurement; this sweep lifts the same knob to the serving layer's tiered
KV hierarchy (:mod:`repro.serving.kvtiers`).  A HILOS node's cache home
is split into a fast top tier and a near-storage tier, a
:class:`~repro.serving.kvtiers.StaticSplit` policy spills an ``alpha``
share of every request's KV below the top tier, and a seeded
heterogeneous queue drains through the tiered node -- so the reported
tokens/s/$ prices demotion traffic and the per-iteration spilled-KV read
surcharge, not just the steady-state step.

The step-time reference point is measured once ever through a
:class:`~repro.calibration.figures.FigurePointCache` (same fingerprint
scheme as the figure harnesses; warm re-runs of the sweep measure
nothing) and stretched into an affine
:class:`~repro.serving.steptime.AnalyticStepTime` that agrees with the
measured point exactly at ``(BATCH, SEQ_LEN)``.  The tier grid itself is
pure discrete-event simulation on top of that reference, so the whole
sweep stays measurement-free on a warm store.
"""

from __future__ import annotations

from repro.calibration import CalibrationStore, resolve_store
from repro.calibration.figures import FigurePointCache
from repro.core.config import HilosConfig
from repro.core.runtime import HilosSystem
from repro.experiments.harness import Table
from repro.models import get_model
from repro.serving import (
    ClusterScheduler,
    ContinuousBatching,
    KVTier,
    Node,
    StaticSplit,
    TierStack,
    make_request_queue,
)
from repro.serving.steptime import AnalyticStepTime
from repro.sim.topology import build_system
from repro.workloads import sample_request_classes

MODEL = "OPT-30B"
N_DEVICES = 8
BATCH = 16
SEQ_LEN = 16384
SEED = 7

FAST_REQUESTS = 48
FULL_REQUESTS = 192
#: Spilled KV share per request (the offload aggressiveness axis).
FAST_ALPHAS = [0.0, 0.25, 0.5]
FULL_ALPHAS = [0.0, 0.125, 0.25, 0.5, 0.75]
#: Top-tier capacity as a fraction of the queue's total final-context KV
#: demand -- small fractions force capacity demotions on top of the
#: static split.
FAST_TOP_FRACTIONS = [0.25, 1.0]
FULL_TOP_FRACTIONS = [0.125, 0.25, 0.5, 1.0]


def run(
    fast: bool = True,
    n_requests: int | None = None,
    seed: int = SEED,
    store: CalibrationStore | None = None,
    use_store: bool = True,
) -> list[Table]:
    """Tiered-drain throughput over the (alpha, top-tier size) grid.

    ``store`` overrides the calibration store; ``use_store=False`` disables
    persistence entirely (the reference point is then measured every run).
    """
    alphas = FAST_ALPHAS if fast else FULL_ALPHAS
    top_fractions = FAST_TOP_FRACTIONS if fast else FULL_TOP_FRACTIONS
    n_requests = n_requests or (FAST_REQUESTS if fast else FULL_REQUESTS)
    store = resolve_store(store, use_store)
    model = get_model(MODEL)
    system = HilosSystem(model, HilosConfig(n_devices=N_DEVICES))
    cache = FigurePointCache(
        system, batch_grid=(BATCH,), seq_grid=(SEQ_LEN,), store=store
    )
    point = cache.measure(BATCH, SEQ_LEN)
    cache.flush()
    # Stretch the single measured point into the affine serving model:
    # exact at (BATCH, SEQ_LEN), linear in context elsewhere.
    step_time = AnalyticStepTime(
        base_seconds=0.0,
        per_token_seconds=point.step_seconds / SEQ_LEN,
        prefill_per_token_seconds=point.prefill_seconds / SEQ_LEN,
    )
    classes = sample_request_classes(n_requests, seed=seed)
    demand = sum(
        request.kv_reservation_bytes(model)
        for request in make_request_queue(classes)
    )
    # Host-link bandwidth from the (never-simulated) topology model -- the
    # rate demoted KV and spilled-KV decode reads actually cross.
    near_storage_bw = build_system(
        system.hardware_config()
    ).effective_host_bandwidth()
    table = Table(
        title=f"KV tier sweep ({MODEL}, {n_requests} mixed requests, "
        f"batch {BATCH}, static split over a 2-tier stack)",
        columns=[
            "alpha_pct",
            "top_tier_pct",
            "tokens_per_s",
            "tokens_per_s_per_usd",
            "top_hit_rate",
            "demoted_gb",
            "spilled_decode_s",
        ],
        notes="alpha is the KV share statically placed in the near-storage "
        "tier; top_tier_pct sizes the fast tier against the queue's total "
        "final-context KV demand; demotions and spilled-KV decode reads "
        f"are billed at the host link ({near_storage_bw / 1e9:.1f} GB/s)",
    )
    for top_fraction in top_fractions:
        for alpha in alphas:
            stack = TierStack(
                (
                    KVTier("hbm", capacity_bytes=top_fraction * demand),
                    KVTier(
                        "nsp",
                        capacity_bytes=demand,
                        bandwidth_bytes_per_s=near_storage_bw,
                    ),
                )
            )
            node = Node(
                system,
                step_time=step_time,
                kv_tiers=stack,
                kv_policy=StaticSplit(alpha),
                name="node0",
            )
            scheduler = ClusterScheduler([node], ContinuousBatching(BATCH))
            report = scheduler.drain(list(classes))
            top = report.kv_tiers[0]
            table.add_row(
                100 * alpha,
                100 * top_fraction,
                report.tokens_per_second,
                report.tokens_per_second_per_usd,
                top.hit_rate,
                sum(tier.demoted_bytes for tier in report.kv_tiers) / 1e9,
                report.spilled_decode_seconds,
            )
    table.notes += (
        f"; {cache.measurement_count} new reference measurements this run "
        "(zero on a warm calibration store)"
    )
    return [table]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
