"""Figure 14: total execution time by output length.

Prefill latency is fixed per request; decode latency scales with the output
length.  Because HILOS accelerates decoding, longer outputs amortize the
shared prefill cost and widen the end-to-end speedup (up to ~6x at 128
output tokens in the paper).

Both halves of each point -- the steady-state step time *and* the prefill
latency -- route through a
:class:`~repro.calibration.figures.FigurePointCache`, which persists them
from one coherent measurement, so warm re-runs measure **nothing**.
"""

from __future__ import annotations

from repro.baselines.flexgen import FlexGenSSD
from repro.calibration import CalibrationStore, resolve_store
from repro.calibration.figures import FigurePointCache
from repro.core.config import HilosConfig
from repro.core.runtime import HilosSystem
from repro.experiments.harness import Table
from repro.models import get_model

BATCH = 16
OUTPUT_LENGTHS = [16, 32, 64, 128]

FAST_POINTS = [("OPT-30B", 16384)]
FULL_POINTS = [
    ("OPT-30B", 16384),
    ("OPT-30B", 32768),
    ("OPT-66B", 16384),
    ("OPT-66B", 32768),
]


def run(
    fast: bool = True,
    store: CalibrationStore | None = None,
    use_store: bool = True,
) -> list[Table]:
    """Prefill/decode split and end-to-end speedup per output length.

    ``store`` overrides the calibration store; ``use_store=False`` disables
    persistence entirely (every run then measures from scratch).
    """
    points = FAST_POINTS if fast else FULL_POINTS
    store = resolve_store(store, use_store)
    table = Table(
        title="Fig 14 total execution time by output length (batch 16)",
        columns=[
            "model",
            "seq_len",
            "output_len",
            "system",
            "prefill_s",
            "decode_s",
            "total_s",
            "speedup",
        ],
    )
    seqs_by_model: dict[str, list[int]] = {}
    for model_name, seq_len in points:
        seqs_by_model.setdefault(model_name, []).append(seq_len)
    new_measurements = 0
    for model_name, seqs in seqs_by_model.items():
        model = get_model(model_name)
        # One cache (and one system instance) per (system, model): the
        # fingerprint stays stable across the whole sweep and across runs.
        caches = {
            "FLEX": FigurePointCache(
                FlexGenSSD(model), batch_grid=(BATCH,), seq_grid=tuple(seqs),
                store=store,
            ),
            "HILOS": FigurePointCache(
                HilosSystem(model, HilosConfig(n_devices=16)),
                batch_grid=(BATCH,), seq_grid=tuple(seqs), store=store,
            ),
        }
        for seq_len in seqs:
            flex = caches["FLEX"].measure(BATCH, seq_len)
            hilos = caches["HILOS"].measure(BATCH, seq_len)
            for output_len in OUTPUT_LENGTHS:
                flex_total = flex.prefill_seconds + flex.step_seconds * output_len
                hilos_total = hilos.prefill_seconds + hilos.step_seconds * output_len
                table.add_row(
                    model_name, seq_len, output_len, "FLEX",
                    flex.prefill_seconds, flex.step_seconds * output_len,
                    flex_total, 1.0,
                )
                table.add_row(
                    model_name, seq_len, output_len, "HILOS",
                    hilos.prefill_seconds, hilos.step_seconds * output_len,
                    hilos_total, flex_total / hilos_total,
                )
        for cache in caches.values():
            cache.flush()
            new_measurements += cache.measurement_count
    table.notes = (
        f"{new_measurements} new measurements this run "
        "(zero on a warm calibration store)"
    )
    return [table]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
