"""Figure 14: total execution time by output length.

Prefill latency is fixed per request; decode latency scales with the output
length.  Because HILOS accelerates decoding, longer outputs amortize the
shared prefill cost and widen the end-to-end speedup (up to ~6x at 128
output tokens in the paper).
"""

from __future__ import annotations

from repro.baselines.flexgen import FlexGenSSD
from repro.core.config import HilosConfig
from repro.core.runtime import HilosSystem
from repro.experiments.harness import Table
from repro.models import get_model

BATCH = 16
OUTPUT_LENGTHS = [16, 32, 64, 128]

FAST_POINTS = [("OPT-30B", 16384)]
FULL_POINTS = [
    ("OPT-30B", 16384),
    ("OPT-30B", 32768),
    ("OPT-66B", 16384),
    ("OPT-66B", 32768),
]


def run(fast: bool = True) -> list[Table]:
    """Prefill/decode split and end-to-end speedup per output length."""
    points = FAST_POINTS if fast else FULL_POINTS
    table = Table(
        title="Fig 14 total execution time by output length (batch 16)",
        columns=[
            "model",
            "seq_len",
            "output_len",
            "system",
            "prefill_s",
            "decode_s",
            "total_s",
            "speedup",
        ],
    )
    for model_name, seq_len in points:
        model = get_model(model_name)
        flex = FlexGenSSD(model).measure(BATCH, seq_len, n_steps=1, warmup_steps=1)
        hilos = HilosSystem(model, HilosConfig(n_devices=16)).measure(
            BATCH, seq_len, n_steps=1, warmup_steps=1
        )
        for output_len in OUTPUT_LENGTHS:
            flex_total = flex.prefill_seconds + flex.step_seconds * output_len
            hilos_total = hilos.prefill_seconds + hilos.step_seconds * output_len
            table.add_row(
                model_name, seq_len, output_len, "FLEX",
                flex.prefill_seconds, flex.step_seconds * output_len, flex_total, 1.0,
            )
            table.add_row(
                model_name, seq_len, output_len, "HILOS",
                hilos.prefill_seconds, hilos.step_seconds * output_len, hilos_total,
                flex_total / hilos_total,
            )
    return [table]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
