"""Figure 13: sensitivity to the spill interval ``c`` and X-cache ratio ``alpha``.

With 16 SmartSSDs the profiled bandwidth ratio ``B_SSD/B_PCI ~= 3`` puts the
analytic optimum at ``alpha ~= 50%``, which the sweep confirms empirically;
``c = 16`` aligns the spill runs with the 4 KiB flash page and minimizes the
writeback management overhead (small ``c`` pays frequent spill syncs; large
``c`` pays growing pinned-buffer DMA, Section 7.3's >30% penalty at c=64).

Every grid point routes through a
:class:`~repro.calibration.figures.FigurePointCache` (each ``(alpha, c)``
configuration is a distinct system with its own fingerprint), so warm
re-runs of the sweep measure **nothing**.
"""

from __future__ import annotations

from repro.calibration import CalibrationStore, resolve_store
from repro.calibration.figures import FigurePointCache
from repro.core.config import HilosConfig
from repro.core.runtime import HilosSystem
from repro.experiments.harness import Table
from repro.models import get_model

BATCH = 16
SEQ_LEN = 16384
N_DEVICES = 16

FAST_MODELS = ["OPT-30B"]
FULL_MODELS = ["OPT-30B", "OPT-66B"]
FAST_GRID = {"c": [2, 16, 64], "alpha": [0.0, 0.5]}
FULL_GRID = {"c": [2, 4, 8, 16, 32, 64], "alpha": [0.0, 0.125, 0.25, 0.5, 0.75]}


def run(
    fast: bool = True,
    store: CalibrationStore | None = None,
    use_store: bool = True,
) -> list[Table]:
    """Throughput over the (c, alpha) grid.

    ``store`` overrides the calibration store; ``use_store=False`` disables
    persistence entirely (every run then measures from scratch).
    """
    grid = FAST_GRID if fast else FULL_GRID
    models = FAST_MODELS if fast else FULL_MODELS
    store = resolve_store(store, use_store)
    table = Table(
        title=f"Fig 13 spill interval x X-cache ratio (batch {BATCH}, s={SEQ_LEN}, {N_DEVICES} SmartSSDs)",
        columns=["model", "alpha_pct", "spill_interval", "tokens_per_s"],
    )
    new_measurements = 0
    last_cache = None
    for model_name in models:
        model = get_model(model_name)
        for alpha in grid["alpha"]:
            for interval in grid["c"]:
                system = HilosSystem(
                    model,
                    HilosConfig(
                        n_devices=N_DEVICES,
                        alpha=alpha,
                        spill_interval=interval,
                        use_xcache=alpha > 0,
                    ),
                )
                cache = FigurePointCache(
                    system, batch_grid=(BATCH,), seq_grid=(SEQ_LEN,), store=store
                )
                point = cache.measure(BATCH, SEQ_LEN)
                new_measurements += cache.measurement_count
                last_cache = cache
                table.add_row(
                    model_name, 100 * alpha, interval, point.tokens_per_second
                )
    if last_cache is not None:
        last_cache.flush()  # the store's dirty set is shared; one flush suffices
    table.notes = (
        f"{new_measurements} new measurements this run "
        "(zero on a warm calibration store)"
    )
    return [table]


def best_point(table: Table) -> tuple[float, int]:
    """(alpha%, c) of the highest-throughput grid point."""
    best = max(table.rows, key=lambda row: row[3])
    return best[1], best[2]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    tables = run(fast=True)
    print(format_tables(tables))
    alpha, c = best_point(tables[0])
    print(f"\nbest grid point: alpha={alpha:.0f}%, c={c}")
