"""Figure 16: cost-effectiveness and SSD endurance.

(a) Tokens/sec/$ normalized to ``FLEX(SSD)``: HILOS reaches ~2x on OPT-66B
and ~1.7x on OPT-175B; an H100 buys a 1.39x speedup but at $30,000 its
cost-efficiency trails HILOS by ~2.9x.

(b) Endurance: total serviceable requests before the 16-drive fleet
exhausts its 7.008 PBW-per-drive budget, across the Azure request classes;
HILOS improves on the FLEX(16 PCIe 3.0 SSDs) baseline by ~1.3-1.5x, plus a
small extra margin at spill interval 32.
"""

from __future__ import annotations

from repro.analysis.cost import cost_efficiency, flexgen_cost, hilos_cost
from repro.analysis.endurance import flexgen_endurance, hilos_endurance, serviceable_requests
from repro.baselines.flexgen import FlexGenDRAM, FlexGenSSD
from repro.core.config import HilosConfig
from repro.core.runtime import HilosSystem
from repro.experiments.harness import Table
from repro.models import get_model
from repro.workloads.requests import REQUEST_CLASSES

BATCH = 16


def cost_table(fast: bool = True) -> Table:
    """Figure 16(a): cost efficiency in tokens/sec/$ (normalized)."""
    points = (
        [("OPT-66B", 16384, "A100")]
        if fast
        else [
            (model, seq, gpu)
            for gpu in ("A100", "H100")
            for model in ("OPT-66B", "OPT-175B")
            for seq in (16384, 32768)
        ]
    )
    table = Table(
        title="Fig 16(a) cost efficiency (tokens/sec/$, normalized to FLEX(SSD))",
        columns=["gpu", "model", "seq_len", "system", "tokens_per_s", "usd", "norm_cost_eff"],
    )
    for model_name, seq_len, gpu in points:
        model = get_model(model_name)
        entries = [
            ("FLEX(SSD)", FlexGenSSD(model, gpu=gpu), flexgen_cost(gpu)),
            ("FLEX(DRAM)", FlexGenDRAM(model, gpu=gpu), flexgen_cost(gpu)),
            ("HILOS (4 SmartSSDs)", HilosSystem(model, HilosConfig(n_devices=4), gpu=gpu), hilos_cost(4, gpu)),
            ("HILOS (8 SmartSSDs)", HilosSystem(model, HilosConfig(n_devices=8), gpu=gpu), hilos_cost(8, gpu)),
            ("HILOS (16 SmartSSDs)", HilosSystem(model, HilosConfig(n_devices=16), gpu=gpu), hilos_cost(16, gpu)),
        ]
        base_eff = None
        for label, system, cost in entries:
            result = system.measure(BATCH, seq_len, n_steps=1, warmup_steps=1)
            eff = (
                cost_efficiency(result.tokens_per_second, cost)
                if not result.oom
                else 0.0
            )
            if label == "FLEX(SSD)":
                base_eff = eff
            table.add_row(
                gpu,
                model_name,
                seq_len,
                label,
                result.tokens_per_second,
                cost.total_usd(),
                eff / base_eff if base_eff else 0.0,
            )
    return table


def endurance_table(fast: bool = True) -> Table:
    """Figure 16(b): total serviceable requests (millions)."""
    models = ["OPT-30B"] if fast else ["OPT-30B", "OPT-66B", "OPT-175B"]
    systems = [
        flexgen_endurance(n_devices=16),
        hilos_endurance(n_devices=16, spill_interval=16),
        hilos_endurance(n_devices=16, spill_interval=32),
    ]
    table = Table(
        title="Fig 16(b) endurance: total serviceable requests (millions)",
        columns=["request_class", "model", "system", "requests_millions", "vs_flex"],
    )
    for request_name, request in REQUEST_CLASSES.items():
        for model_name in models:
            model = get_model(model_name)
            base = None
            for endurance in systems:
                requests = serviceable_requests(model, request, endurance)
                if base is None:
                    base = requests
                table.add_row(
                    request_name,
                    model_name,
                    endurance.label,
                    requests / 1e6,
                    requests / base,
                )
    return table


def run(fast: bool = True) -> list[Table]:
    """Both panels of Figure 16."""
    return [cost_table(fast), endurance_table(fast)]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
