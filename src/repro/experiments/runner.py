"""Command-line entry point: regenerate any (or every) table and figure.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner fig10 fig15
    python -m repro.experiments.runner --all --full --jobs 4
    python -m repro.experiments.runner serving --fast --batch-grid 1,4,16
    python -m repro.experiments.runner serving --arrival poisson:0.1 \
        --admission optimistic --prefill-chunk 512
    python -m repro.experiments.runner serving --nodes 4 --router jsq \
        --arrival poisson:0.1
    python -m repro.experiments.runner serving --nodes 4 --router jsq \
        --arrival poisson:0.1 --faults spot:900:60
    python -m repro.experiments.runner serving --nodes 2 --router jsq \
        --arrival poisson:0.2 --overload retry:32
    python -m repro.experiments.runner serving --autoscale auto:1:4:8:60 \
        --arrival poisson:0.2
    python -m repro.experiments.runner --prewarm --jobs 8
    python -m repro.experiments.runner fig10 --symmetry full

Independent experiments fan out across worker processes with ``--jobs N``;
results print in request order as soon as each is ready.  Serving-specific
knobs (calibration grids, calibration store directory) pass through to any
experiment whose ``run()`` accepts them.  ``--prewarm`` measures the
serving systems' missing calibration cells across ``--jobs`` processes
before (or instead of) running experiments; ``--symmetry`` forces the
simulation substrate mode for experiments that accept it ("auto" folds
homogeneous device arrays to representative devices, "full" simulates
every device).
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from concurrent.futures import ProcessPoolExecutor

from repro.experiments import (
    discussion_future_csd,
    estimator_correlation,
    fig02_motivation,
    fig04_ans_breakdown,
    fig10_throughput,
    fig11_batch_sensitivity,
    fig12_model_arch,
    fig13_spill_alpha,
    fig14_output_length,
    fig15_ablation,
    fig16_cost_endurance,
    fig17_energy_multinode,
    fig18_accuracy,
    kvtier_sweep,
    serving_throughput,
    table3_resources,
)
from repro.experiments.harness import format_tables

EXPERIMENTS = {
    "fig2": fig02_motivation,
    "fig4": fig04_ans_breakdown,
    "fig10": fig10_throughput,
    "fig11": fig11_batch_sensitivity,
    "fig12": fig12_model_arch,
    "fig13": fig13_spill_alpha,
    "fig14": fig14_output_length,
    "fig15": fig15_ablation,
    "fig16": fig16_cost_endurance,
    "fig17": fig17_energy_multinode,
    "fig18": fig18_accuracy,
    "table3": table3_resources,
    "estimator": estimator_correlation,
    "future-csd": discussion_future_csd,
    "serving": serving_throughput,
    "kvtiers": kvtier_sweep,
}

def _supported_kwargs(module, kwargs: dict) -> dict:
    """The subset of ``kwargs`` that ``module.run`` actually accepts."""
    params = inspect.signature(module.run).parameters
    return {key: value for key, value in kwargs.items() if key in params}


def _run_experiment_job(name: str, fast: bool, kwargs: dict) -> tuple[str, str, float]:
    """Worker body: run one experiment, return its rendered tables.

    Top-level (picklable) so ``--jobs`` can dispatch it to worker
    processes; also used inline for sequential runs so both paths share
    one code path for kwarg filtering and formatting.
    """
    module = EXPERIMENTS[name]
    started = time.time()
    tables = module.run(fast=fast, **_supported_kwargs(module, kwargs))
    elapsed = time.time() - started
    return name, format_tables(tables), elapsed


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print their tables."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment names (see --list)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--full", action="store_true", help="paper-scale parameters")
    parser.add_argument(
        "--fast", action="store_true",
        help="fast parameters (the default; mutually exclusive with --full)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment names")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run independent experiments across N worker processes",
    )
    parser.add_argument(
        "--symmetry", choices=("auto", "full", "representative"), default=None,
        help="simulation substrate mode for experiments that accept it "
        "(auto folds homogeneous device arrays to representative devices)",
    )
    parser.add_argument(
        "--prewarm", action="store_true",
        help="measure the serving systems' missing calibration cells across "
        "--jobs processes before (or instead of) running experiments",
    )
    serving_throughput.add_calibration_cli(parser)
    serving_throughput.add_serving_cli(parser)
    args = parser.parse_args(argv)
    if args.list:
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {doc}")
        return 0
    if args.fast and args.full:
        parser.error("--fast and --full are mutually exclusive")
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.prewarm and args.no_store:
        parser.error("--prewarm requires the persistent store (conflicts with --no-store)")
    names = list(EXPERIMENTS) if args.all else args.experiments
    if not names and not args.prewarm:
        parser.error("no experiments requested (use --all or --list)")
    for name in names:
        if name not in EXPERIMENTS:
            parser.error(f"unknown experiment {name!r} (use --list)")

    kwargs = serving_throughput.calibration_kwargs(parser, args)
    kwargs.update(serving_throughput.serving_kwargs(parser, args))
    if args.symmetry is not None:
        kwargs["symmetry"] = args.symmetry
    if kwargs and names and not any(
        _supported_kwargs(EXPERIMENTS[name], kwargs) for name in names
    ):
        parser.error(
            "none of the requested experiments accept the given "
            f"calibration options ({', '.join(sorted(kwargs))})"
        )

    if args.prewarm:
        from repro.calibration.prewarm import prewarm_step_grids
        from repro.serving.steptime import DEFAULT_BATCH_GRID, DEFAULT_SEQ_GRID

        labels = (
            serving_throughput.FULL_SYSTEMS if args.full
            else serving_throughput.FAST_SYSTEMS
        )
        started = time.time()
        reports = prewarm_step_grids(
            labels,
            batch_grid=kwargs.get("batch_grid", DEFAULT_BATCH_GRID),
            seq_grid=kwargs.get("seq_grid", DEFAULT_SEQ_GRID),
            store=kwargs.get("store"),
            jobs=args.jobs,
        )
        elapsed = time.time() - started
        for report in reports:
            print(
                f"[prewarm] {report.label}: {report.measured} measured, "
                f"{report.already_cached} cached, {report.infeasible} infeasible "
                f"of {report.total_cells} cells ({report.fingerprint[:16]})"
            )
        print(f"[prewarm completed in {elapsed:.1f}s across {args.jobs} jobs]")
        if not names:
            return 0

    fast = not args.full
    if args.jobs == 1 or len(names) == 1:
        for name in names:
            _, rendered, elapsed = _run_experiment_job(name, fast, kwargs)
            print(rendered)
            print(f"\n[{name} completed in {elapsed:.1f}s]\n")
        return 0
    # Fan independent experiments out across processes; print in request
    # order so output stays deterministic regardless of completion order.
    with ProcessPoolExecutor(max_workers=min(args.jobs, len(names))) as pool:
        futures = [pool.submit(_run_experiment_job, name, fast, kwargs) for name in names]
        for future in futures:
            name, rendered, elapsed = future.result()
            print(rendered)
            print(f"\n[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
