"""Command-line entry point: regenerate any (or every) table and figure.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner fig10 fig15
    python -m repro.experiments.runner --all --full
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    discussion_future_csd,
    estimator_correlation,
    fig02_motivation,
    fig04_ans_breakdown,
    fig10_throughput,
    fig11_batch_sensitivity,
    fig12_model_arch,
    fig13_spill_alpha,
    fig14_output_length,
    fig15_ablation,
    fig16_cost_endurance,
    fig17_energy_multinode,
    fig18_accuracy,
    serving_throughput,
    table3_resources,
)
from repro.experiments.harness import format_tables

EXPERIMENTS = {
    "fig2": fig02_motivation,
    "fig4": fig04_ans_breakdown,
    "fig10": fig10_throughput,
    "fig11": fig11_batch_sensitivity,
    "fig12": fig12_model_arch,
    "fig13": fig13_spill_alpha,
    "fig14": fig14_output_length,
    "fig15": fig15_ablation,
    "fig16": fig16_cost_endurance,
    "fig17": fig17_energy_multinode,
    "fig18": fig18_accuracy,
    "table3": table3_resources,
    "estimator": estimator_correlation,
    "future-csd": discussion_future_csd,
    "serving": serving_throughput,
}


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print their tables."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment names (see --list)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--full", action="store_true", help="paper-scale parameters")
    parser.add_argument("--list", action="store_true", help="list experiment names")
    args = parser.parse_args(argv)
    if args.list:
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {doc}")
        return 0
    names = list(EXPERIMENTS) if args.all else args.experiments
    if not names:
        parser.error("no experiments requested (use --all or --list)")
    for name in names:
        if name not in EXPERIMENTS:
            parser.error(f"unknown experiment {name!r} (use --list)")
        started = time.time()
        tables = EXPERIMENTS[name].run(fast=not args.full)
        elapsed = time.time() - started
        print(format_tables(tables))
        print(f"\n[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
