"""Figure 2: motivational analysis on OPT-175B.

(a) Memory-footprint breakdown (KV cache / weights / others) across context
lengths and batch sizes -- the KV cache reaches terabytes and dwarfs the
512 GB host DRAM.

(b) Execution-time breakdown of the state-of-the-art offloading baseline:
KV-cache I/O consumes over 60% of decode time for long contexts, and the
batching speedup (relative to batch 1) shrinks as contexts grow because
weight transfer is no longer the dominant term.
"""

from __future__ import annotations

from repro.baselines.flexgen import FlexGenSSD
from repro.experiments.harness import Table
from repro.models import get_model, memory_footprint
from repro.sim.metrics import HOST_COMPUTE, LOAD_KV, LOAD_WEIGHT, PAPER_PHASES, STORE_KV
from repro.units import GiB, bytes_to_tb

MODEL = "OPT-175B"
CONTEXTS = {"fast": [8192, 32768], "full": [8192, 32768, 131072]}
BATCHES = [1, 4, 16]


def footprint_table(fast: bool = True) -> Table:
    """Figure 2(a): footprint breakdown in TB."""
    model = get_model(MODEL)
    table = Table(
        title="Fig 2(a) memory footprint breakdown (OPT-175B)",
        columns=["seq_len", "batch", "kv_cache_tb", "weights_tb", "others_tb", "total_tb"],
        notes="host DRAM capacity is 0.55 TB (512 GiB)",
    )
    for seq_len in CONTEXTS["fast" if fast else "full"]:
        for batch in BATCHES:
            fp = memory_footprint(model, batch, seq_len)
            table.add_row(
                seq_len,
                batch,
                bytes_to_tb(fp.kv_cache_bytes),
                bytes_to_tb(fp.weight_bytes),
                bytes_to_tb(fp.other_bytes),
                bytes_to_tb(fp.total_bytes),
            )
    return table


def execution_breakdown_table(fast: bool = True) -> Table:
    """Figure 2(b): time-portion breakdown + batching speedup."""
    model = get_model(MODEL)
    contexts = CONTEXTS["fast" if fast else "full"]
    table = Table(
        title="Fig 2(b) execution time breakdown (FLEX-style offloading, OPT-175B)",
        columns=[
            "seq_len",
            "batch",
            "kv_cache_pct",
            "weight_pct",
            "others_pct",
            "speedup_vs_bs1",
        ],
        notes="speedup = decoding throughput relative to batch size 1",
    )
    for seq_len in contexts:
        base_tput = None
        for batch in BATCHES:
            result = FlexGenSSD(model).measure(batch, seq_len, n_steps=1, warmup_steps=1)
            fractions = result.breakdown.fractions(PAPER_PHASES)
            kv = fractions[LOAD_KV] + fractions[STORE_KV]
            weight = fractions[LOAD_WEIGHT]
            others = fractions[HOST_COMPUTE]
            if base_tput is None:
                base_tput = result.tokens_per_second
            table.add_row(
                seq_len,
                batch,
                100.0 * kv,
                100.0 * weight,
                100.0 * others,
                result.tokens_per_second / base_tput,
            )
    return table


def run(fast: bool = True) -> list[Table]:
    """Both panels of Figure 2."""
    return [footprint_table(fast), execution_breakdown_table(fast)]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
