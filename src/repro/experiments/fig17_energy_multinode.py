"""Figure 17: energy breakdown and the multi-node vLLM comparison.

(a) Energy per generated token, attributed to CPU/DRAM/GPU/SSD and
normalized to the per-model worst case: FLEX(SSD)'s low throughput makes it
the least efficient despite cheap drives; HILOS's SmartSSDs draw more power
but cut latency enough for up to ~85% total-energy savings.

(b) OPT-175B against a 2-node / 8x A6000 vLLM deployment: the fleet holds
the weights but starves for KV room, so HILOS wins by ~1.6-1.8x.
"""

from __future__ import annotations

from repro.analysis.energy import energy_breakdown
from repro.baselines.flexgen import FlexGenDRAM, FlexGenSSD
from repro.baselines.vllm import MultiNodeVLLM
from repro.calibration import CalibrationStore, resolve_store
from repro.core.config import HilosConfig
from repro.core.runtime import HilosSystem
from repro.experiments.harness import Table
from repro.models import get_model

BATCH = 16


def energy_table(fast: bool = True) -> Table:
    """Figure 17(a): per-token energy breakdown."""
    models = ["OPT-30B"] if fast else ["OPT-30B", "OPT-66B", "OPT-175B"]
    seq_len = 16384
    table = Table(
        title="Fig 17(a) energy per token (J), by component",
        columns=["model", "system", "cpu_j", "dram_j", "gpu_j", "ssd_j", "total_j", "norm"],
        notes="norm is relative to the per-model maximum (the paper's normalized energy)",
    )
    for model_name in models:
        model = get_model(model_name)
        entries = [
            ("FLEX(SSD)", FlexGenSSD(model), dict(n_conventional_ssds=4)),
            ("FLEX(DRAM)", FlexGenDRAM(model), dict(n_conventional_ssds=4)),
            ("HILOS (4 SSDs)", HilosSystem(model, HilosConfig(n_devices=4)), dict(n_smartssds=4, d_group=model.d_group)),
            ("HILOS (8 SSDs)", HilosSystem(model, HilosConfig(n_devices=8)), dict(n_smartssds=8, d_group=model.d_group)),
            ("HILOS (16 SSDs)", HilosSystem(model, HilosConfig(n_devices=16)), dict(n_smartssds=16, d_group=model.d_group)),
        ]
        rows = []
        for label, system, kwargs in entries:
            result = system.measure(BATCH, seq_len, n_steps=1, warmup_steps=1)
            if result.oom:
                continue
            energy = energy_breakdown(result, **kwargs)
            rows.append((label, energy))
        if not rows:
            continue
        max_total = max(energy.total_j for _, energy in rows)
        for label, energy in rows:
            table.add_row(
                model_name,
                label,
                energy.cpu_j,
                energy.dram_j,
                energy.gpu_j,
                energy.ssd_j,
                energy.total_j,
                energy.total_j / max_total,
            )
    return table


#: The routed-fleet row: a 2-host HILOS deployment (mirroring the 2-node
#: vLLM baseline's chassis count) draining one shared queue under JSQ.
FLEET_NODES = 2
FLEET_REQUESTS = 8
FLEET_OUTPUT_TOKENS = 16


def _routed_fleet_tokens_per_second(model, seq_len: int, store) -> float:
    """Fleet decode throughput of 2x HILOS-8 draining one routed queue.

    Unlike the single-box rows (steady-state ``measure()`` points), this is
    a whole serving drain: fixed-shape requests at the figure's context
    length, sharded across the two hosts by join-shortest-queue, with the
    fleet's sustained decode tokens/s reported.  Step times resolve through
    ``store`` (the harness's calibration store), so warm re-runs of the
    figure measure only the single-box rows.
    """
    from repro.serving import ClusterScheduler, ContinuousBatching, LeastOutstandingTokens
    from repro.serving.cluster import build_fleet
    from repro.workloads.requests import RequestClass

    nodes = build_fleet(
        model,
        ["HILOS (8 SmartSSDs)"] * FLEET_NODES,
        store=store,
        batch_grid=(1, 8, 16),
        seq_grid=(seq_len,),
    )
    scheduler = ClusterScheduler(
        nodes, ContinuousBatching(BATCH), router=LeastOutstandingTokens()
    )
    shape = RequestClass(
        "Fig17", input_tokens=seq_len, output_tokens=FLEET_OUTPUT_TOKENS
    )
    report = scheduler.drain([shape] * FLEET_REQUESTS)
    nodes[0].step_time.flush()
    # Decode throughput net of the prefill phase, comparable to the
    # steady-state tokens/s the measure() rows report.  The boundary comes
    # from the drain itself (the slowest node's last first-token time), so
    # it stays correct under any request count, router, or admission
    # stagger.
    prefill = max(r.first_token_time for r in report.requests)
    decode_seconds = max(report.makespan_seconds - prefill, 1e-9)
    return report.generated_tokens / decode_seconds


def multinode_table(
    fast: bool = True,
    store: "CalibrationStore | None" = None,
    use_store: bool = True,
) -> Table:
    """Figure 17(b): HILOS vs the distributed vLLM baseline on OPT-175B.

    Beyond the paper's single-box rows, a ``2x HILOS (8 SmartSSDs) [jsq]``
    row prices the fleet the way the vLLM baseline is priced: two hosts,
    one request stream, routed by the cluster scheduler -- the Section 6.6
    comparison as a scheduling target instead of a cost line.  ``store`` /
    ``use_store`` configure the fleet row's calibration cache
    (``use_store=False`` measures from scratch, persisting nothing).
    """
    store = resolve_store(store, use_store)
    model = get_model("OPT-175B")
    contexts = [16384] if fast else [16384, 32768]
    table = Table(
        title="Fig 17(b) multi-node comparison (OPT-175B)",
        columns=["seq_len", "system", "batch", "tokens_per_s", "hilos_speedup"],
        notes="the 2x HILOS row drains one routed request queue across two "
        "simulated hosts (join-shortest-queue)",
    )
    for seq_len in contexts:
        entries = [
            ("FLEX(SSD)", FlexGenSSD(model)),
            ("FLEX(DRAM)", FlexGenDRAM(model)),
            ("vLLM (8xA6000)", MultiNodeVLLM(model)),
            ("HILOS (16 SSDs)", HilosSystem(model, HilosConfig(n_devices=16))),
        ]
        results = {}
        for label, system in entries:
            results[label] = system.measure(BATCH, seq_len, n_steps=1, warmup_steps=1)
        hilos_tput = results["HILOS (16 SSDs)"].tokens_per_second
        for label, result in results.items():
            speedup = (
                hilos_tput / result.tokens_per_second
                if result.tokens_per_second > 0
                else float("inf")
            )
            table.add_row(
                seq_len, label, result.effective_batch, result.tokens_per_second, speedup
            )
        fleet_tput = _routed_fleet_tokens_per_second(model, seq_len, store)
        table.add_row(
            seq_len,
            f"{FLEET_NODES}x HILOS (8 SmartSSDs) [jsq]",
            FLEET_REQUESTS,
            fleet_tput,
            hilos_tput / fleet_tput if fleet_tput > 0 else float("inf"),
        )
    return table


def run(
    fast: bool = True,
    store: "CalibrationStore | None" = None,
    use_store: bool = True,
) -> list[Table]:
    """Both panels of Figure 17.

    ``store`` overrides the calibration store backing the fleet row;
    ``use_store=False`` disables persistence (measure from scratch).
    """
    return [energy_table(fast), multinode_table(fast, store=store, use_store=use_store)]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
