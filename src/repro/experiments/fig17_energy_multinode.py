"""Figure 17: energy breakdown and the multi-node vLLM comparison.

(a) Energy per generated token, attributed to CPU/DRAM/GPU/SSD and
normalized to the per-model worst case: FLEX(SSD)'s low throughput makes it
the least efficient despite cheap drives; HILOS's SmartSSDs draw more power
but cut latency enough for up to ~85% total-energy savings.

(b) OPT-175B against a 2-node / 8x A6000 vLLM deployment: the fleet holds
the weights but starves for KV room, so HILOS wins by ~1.6-1.8x.
"""

from __future__ import annotations

from repro.analysis.energy import energy_breakdown
from repro.baselines.flexgen import FlexGenDRAM, FlexGenSSD
from repro.baselines.vllm import MultiNodeVLLM
from repro.core.config import HilosConfig
from repro.core.runtime import HilosSystem
from repro.experiments.harness import Table
from repro.models import get_model

BATCH = 16


def energy_table(fast: bool = True) -> Table:
    """Figure 17(a): per-token energy breakdown."""
    models = ["OPT-30B"] if fast else ["OPT-30B", "OPT-66B", "OPT-175B"]
    seq_len = 16384
    table = Table(
        title="Fig 17(a) energy per token (J), by component",
        columns=["model", "system", "cpu_j", "dram_j", "gpu_j", "ssd_j", "total_j", "norm"],
        notes="norm is relative to the per-model maximum (the paper's normalized energy)",
    )
    for model_name in models:
        model = get_model(model_name)
        entries = [
            ("FLEX(SSD)", FlexGenSSD(model), dict(n_conventional_ssds=4)),
            ("FLEX(DRAM)", FlexGenDRAM(model), dict(n_conventional_ssds=4)),
            ("HILOS (4 SSDs)", HilosSystem(model, HilosConfig(n_devices=4)), dict(n_smartssds=4, d_group=model.d_group)),
            ("HILOS (8 SSDs)", HilosSystem(model, HilosConfig(n_devices=8)), dict(n_smartssds=8, d_group=model.d_group)),
            ("HILOS (16 SSDs)", HilosSystem(model, HilosConfig(n_devices=16)), dict(n_smartssds=16, d_group=model.d_group)),
        ]
        rows = []
        for label, system, kwargs in entries:
            result = system.measure(BATCH, seq_len, n_steps=1, warmup_steps=1)
            if result.oom:
                continue
            energy = energy_breakdown(result, **kwargs)
            rows.append((label, energy))
        if not rows:
            continue
        max_total = max(energy.total_j for _, energy in rows)
        for label, energy in rows:
            table.add_row(
                model_name,
                label,
                energy.cpu_j,
                energy.dram_j,
                energy.gpu_j,
                energy.ssd_j,
                energy.total_j,
                energy.total_j / max_total,
            )
    return table


def multinode_table(fast: bool = True) -> Table:
    """Figure 17(b): HILOS vs the distributed vLLM baseline on OPT-175B."""
    model = get_model("OPT-175B")
    contexts = [16384] if fast else [16384, 32768]
    table = Table(
        title="Fig 17(b) multi-node comparison (OPT-175B)",
        columns=["seq_len", "system", "batch", "tokens_per_s", "hilos_speedup"],
    )
    for seq_len in contexts:
        entries = [
            ("FLEX(SSD)", FlexGenSSD(model)),
            ("FLEX(DRAM)", FlexGenDRAM(model)),
            ("vLLM (8xA6000)", MultiNodeVLLM(model)),
            ("HILOS (16 SSDs)", HilosSystem(model, HilosConfig(n_devices=16))),
        ]
        results = {}
        for label, system in entries:
            results[label] = system.measure(BATCH, seq_len, n_steps=1, warmup_steps=1)
        hilos_tput = results["HILOS (16 SSDs)"].tokens_per_second
        for label, result in results.items():
            speedup = (
                hilos_tput / result.tokens_per_second
                if result.tokens_per_second > 0
                else float("inf")
            )
            table.add_row(
                seq_len, label, result.effective_batch, result.tokens_per_second, speedup
            )
    return table


def run(fast: bool = True) -> list[Table]:
    """Both panels of Figure 17."""
    return [energy_table(fast), multinode_table(fast)]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
