"""Figure 12: model-architecture sensitivity (GQA and MoE).

(a) Kernel microbenchmark: GB/s of KV processed by the MHA (d_group=1) and
GQA (d_group=4, 5) accelerator kernels, all comfortably above the ~3 GB/s
SSD P2P read feed.

(b) End-to-end decoding throughput on Qwen2.5-32B (dense+GQA), Mixtral-8x7B
(MoE+GQA) and GLaM-143B (MoE+MHA): the lower KV-to-weight ratio of MoE/GQA
models favors FLEX(DRAM) slightly, but HILOS still wins (1.16-3.36x) and
the gap widens with context length.
"""

from __future__ import annotations

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.estimator import kernel_throughput, ssd_feed_throughput
from repro.baselines.flexgen import FlexGenDRAM, FlexGenSSD
from repro.core.config import HilosConfig
from repro.core.runtime import HilosSystem
from repro.experiments.harness import Table
from repro.models import get_model
from repro.units import GB

BATCH = 16

FAST_POINTS = [("Qwen2.5-32B", [32768, 131072]), ("Mixtral-8x7B", [32768])]
FULL_POINTS = [
    ("Qwen2.5-32B", [32768, 65536, 98304, 131072]),
    ("Mixtral-8x7B", [32768, 65536, 98304, 131072]),
    ("GLaM-143B", [32768, 65536, 98304, 131072]),
]


def kernel_microbenchmark() -> Table:
    """Figure 12(a): kernel throughput vs the SSD feed."""
    table = Table(
        title="Fig 12(a) kernel microbenchmark (GB/s)",
        columns=["kernel", "throughput_gb_s"],
        notes="all kernels exceed the ~3 GB/s SSD P2P read rate",
    )
    table.add_row("SSD Read", ssd_feed_throughput() / GB)
    for label, d_group in (("MHA (group=1)", 1), ("GQA (group=4)", 4), ("GQA (group=5)", 5)):
        config = AcceleratorConfig(d_group=d_group)
        table.add_row(label, kernel_throughput(config) / GB)
    return table


def model_sensitivity(fast: bool = True) -> Table:
    """Figure 12(b): end-to-end throughput across model architectures."""
    points = FAST_POINTS if fast else FULL_POINTS
    table = Table(
        title="Fig 12(b) model-type sensitivity (batch 16)",
        columns=["model", "seq_len", "system", "batch", "tokens_per_s", "norm_vs_flex_ssd"],
    )
    for model_name, contexts in points:
        model = get_model(model_name)
        for seq_len in contexts:
            systems = [
                ("FLEX(SSD)", FlexGenSSD(model)),
                ("FLEX(DRAM)", FlexGenDRAM(model)),
                ("HILOS (16 SmartSSDs)", HilosSystem(model, HilosConfig(n_devices=16))),
            ]
            baseline = None
            for label, system in systems:
                result = system.measure(BATCH, seq_len, n_steps=1, warmup_steps=1)
                if label == "FLEX(SSD)":
                    baseline = result.tokens_per_second
                table.add_row(
                    model_name,
                    seq_len,
                    label,
                    result.effective_batch,
                    result.tokens_per_second,
                    result.tokens_per_second / baseline if baseline else 0.0,
                )
    return table


def run(fast: bool = True) -> list[Table]:
    """Both panels of Figure 12."""
    return [kernel_microbenchmark(), model_sensitivity(fast)]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
