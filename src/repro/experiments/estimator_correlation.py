"""Section 5.1: validating the cycle-count performance estimator.

The paper correlates its HLS cycle-count estimator against measured
SmartSSD throughput over sequence lengths 4K-32K for the three shipped
kernels, reporting Pearson r = 0.93.  We reproduce the methodology: the
estimator's predicted latencies are correlated against the event
simulation's measured device-level latencies (which additionally include
NVMe submission latency, DRAM-channel sharing, and ingest contention the
cycle model ignores).
"""

from __future__ import annotations

from scipy import stats

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.estimator import PerformanceEstimator, kernel_throughput
from repro.experiments.harness import Table
from repro.sim.engine import Simulator
from repro.sim.channel import Channel
from repro.sim.flash import SmartSSD

SEQ_LENS_FAST = [4096, 8192, 16384, 32768]
SEQ_LENS_FULL = [4096, 6144, 8192, 12288, 16384, 24576, 32768]


def measured_latency(config: AcceleratorConfig, seq_len: int) -> float:
    """Event-simulated latency of one attention tile on one device."""
    sim = Simulator()
    device = SmartSSD(sim, 0)
    engine = Channel(sim, kernel_throughput(config), name="engine", discipline="fifo")
    kv_bytes = 2 * seq_len * config.head_dim * config.element_bytes
    done = sim.all_of([device.p2p_read(kv_bytes), engine.request(kv_bytes)])
    sim.run(done)
    return sim.now


def run(fast: bool = True) -> list[Table]:
    """Estimated vs measured latency and the per-kernel Pearson r."""
    seq_lens = SEQ_LENS_FAST if fast else SEQ_LENS_FULL
    detail = Table(
        title="Estimator vs simulated latency (Section 5.1)",
        columns=["d_group", "seq_len", "estimated_s", "measured_s"],
    )
    summary = Table(
        title="Estimator correlation (paper: Pearson r = 0.93)",
        columns=["d_group", "pearson_r"],
    )
    for d_group in (1, 4, 5):
        config = AcceleratorConfig(d_group=d_group)
        estimator = PerformanceEstimator(config)
        estimated = []
        measured = []
        for seq_len in seq_lens:
            est = estimator.estimate(seq_len).latency_seconds
            mea = measured_latency(config, seq_len)
            estimated.append(est)
            measured.append(mea)
            detail.add_row(d_group, seq_len, est, mea)
        r, _p = stats.pearsonr(estimated, measured)
        summary.add_row(d_group, float(r))
    return [summary, detail]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
