"""Figure 4(b)/(c): what attention-near-storage changes, and Equation 3.

(b) Decode latency breakdown: the baseline is dominated by loading the KV
cache over the host interconnect; with ANS the bottleneck shifts to the
device-internal storage I/O.

(c) Host-resource utilization: offloading attention leaves the host (GPU,
CPU, DRAM capacity) underutilized -- the headroom cooperative X-cache
exploits.

Also prints the Equation 3 interconnect-traffic ratio, cross-checking the
closed form against the simulated byte counters.
"""

from __future__ import annotations

from repro.analysis.traffic import (
    ans_step_traffic,
    ans_traffic_reduction_ratio,
    baseline_step_traffic,
)
from repro.baselines.flexgen import FlexGenSSD
from repro.core.config import HilosConfig
from repro.core.runtime import HilosSystem
from repro.experiments.harness import Table
from repro.models import get_model
from repro.sim.metrics import HOST_COMPUTE, LOAD_KV, LOAD_WEIGHT, PAPER_PHASES, STORE_KV

MODEL = "OPT-30B"
BATCH = 16


def ans_only_system(model, n_devices: int = 8) -> HilosSystem:
    """HILOS with only the ANS core enabled (no X-cache, no delayed WB)."""
    return HilosSystem(
        model,
        HilosConfig(n_devices=n_devices, use_xcache=False, use_delayed_writeback=False),
    )


def breakdown_table(fast: bool = True) -> Table:
    """Figure 4(b): per-phase latency shares, baseline vs ANS."""
    model = get_model(MODEL)
    contexts = [16384, 32768]
    table = Table(
        title="Fig 4(b) decode latency breakdown: baseline (SSD+CPU) vs ANS",
        columns=["system", "seq_len", "load_weight_pct", "load_kv_pct", "store_kv_pct", "host_compute_pct"],
    )
    for seq_len in contexts:
        for system in (FlexGenSSD(model), ans_only_system(model)):
            result = system.measure(BATCH, seq_len, n_steps=1, warmup_steps=1)
            f = result.breakdown.fractions(PAPER_PHASES)
            table.add_row(
                "Baseline (SSD+CPU)" if isinstance(system, FlexGenSSD) else "Proposed (ANS)",
                seq_len,
                100 * f[LOAD_WEIGHT],
                100 * f[LOAD_KV],
                100 * f[STORE_KV],
                100 * f[HOST_COMPUTE],
            )
    return table


def utilization_table(fast: bool = True) -> Table:
    """Figure 4(c): host resource utilization, baseline vs ANS."""
    model = get_model(MODEL)
    table = Table(
        title="Fig 4(c) host resource utilization (%)",
        columns=["system", "seq_len", "cpu_pct", "gpu_pct", "dram_capacity_pct"],
    )
    for seq_len in (16384, 32768):
        for system in (FlexGenSSD(model), ans_only_system(model)):
            result = system.measure(BATCH, seq_len, n_steps=1, warmup_steps=1)
            u = result.utilization
            table.add_row(
                "Baseline (SSD+CPU)" if isinstance(system, FlexGenSSD) else "Proposed (ANS)",
                seq_len,
                100 * u.cpu,
                100 * u.gpu,
                100 * u.dram_capacity,
            )
    return table


def traffic_table(fast: bool = True) -> Table:
    """Equation 3: interconnect traffic, baseline vs ANS, and the ratio."""
    model = get_model(MODEL)
    table = Table(
        title="Eq 3 interconnect traffic per decode step per layer (OPT-30B, batch 1)",
        columns=["seq_len", "baseline_bytes", "ans_bytes", "measured_ratio", "eq3_ratio"],
    )
    for seq_len in (8192, 32768, 131072):
        base = baseline_step_traffic(model, 1, seq_len)
        ans = ans_step_traffic(model, 1, seq_len)
        table.add_row(
            seq_len,
            base.interconnect_total,
            ans.interconnect_total,
            base.interconnect_total / ans.interconnect_total,
            ans_traffic_reduction_ratio(seq_len),
        )
    return table


def run(fast: bool = True) -> list[Table]:
    """All three Figure 4 views."""
    return [breakdown_table(fast), utilization_table(fast), traffic_table(fast)]


if __name__ == "__main__":
    from repro.experiments.harness import format_tables

    print(format_tables(run(fast=True)))
