"""HILOS reproduction: near-storage processing for offline LLM inference.

The package reproduces "A Cost-Effective Near-Storage Processing Solution
for Offline Inference of Long-Context LLMs" (ASPLOS 2026) as a pure-Python
system: calibrated hardware simulators, bit-faithful attention numerics,
and one experiment harness per paper table/figure.

Typical entry points::

    from repro import HilosConfig, HilosSystem, get_model

    system = HilosSystem(get_model("OPT-66B"), HilosConfig(n_devices=16))
    result = system.measure(batch_size=16, seq_len=32768)

See ``repro.experiments.runner`` for regenerating the paper's results and
``DESIGN.md`` / ``EXPERIMENTS.md`` for the reproduction methodology.
"""

from repro.calibration import CalibrationStore, system_fingerprint

from repro.baselines import (
    DeepSpeedUVM,
    FlexGenDRAM,
    FlexGenSSD,
    FlexGenSmartSSDsNoFPGA,
    MeasuredResult,
    MultiNodeVLLM,
    build_inference_system,
)
from repro.core import HilosConfig, HilosSystem
from repro.models import ModelConfig, get_model, list_models

__version__ = "1.2.0"

__all__ = [
    "HilosConfig",
    "HilosSystem",
    "ModelConfig",
    "get_model",
    "list_models",
    "MeasuredResult",
    "FlexGenSSD",
    "FlexGenDRAM",
    "FlexGenSmartSSDsNoFPGA",
    "DeepSpeedUVM",
    "MultiNodeVLLM",
    "build_inference_system",
    "CalibrationStore",
    "system_fingerprint",
    "__version__",
]
