"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration mistakes from simulation-engine faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class CapacityError(ReproError):
    """A placement request exceeded a device's modeled capacity.

    Raised, for example, when a model's KV cache cannot fit in host DRAM for
    a ``FLEX(DRAM)`` configuration (the paper reports these cases as
    ``CPU OOM`` in Figures 10-12).
    """


class SimulationError(ReproError):
    """The discrete-event simulation kernel reached an inconsistent state."""


class SchedulingError(ReproError):
    """A scheduler (X-cache, writeback, partitioner) received invalid work."""


class NumericsError(ReproError):
    """A functional kernel was driven with shapes or dtypes it cannot accept."""
